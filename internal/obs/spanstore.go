package obs

// SpanStore keeps recently ended spans in memory, grouped by trace, so
// /debug/ist/traces can serve span trees and waterfalls without any
// external collector. It is strictly bounded: at most maxTraces traces
// (least-recently-updated evicted first) of at most maxSpansPerTrace spans
// each, so a chatty session can never grow the process heap unboundedly.
//
// FlightRecorder is the other consumer of ended spans: a fixed ring of the
// most recent spans, snapshotted to the trace dir when something goes wrong
// (panic rescue, 409 conflict, admission shed, budget exhaustion) — the
// span-level equivalent of a black box.

import (
	"fmt"
	"html"
	"io"
	"sort"
	"sync"
	"time"
)

// Default bounds for NewSpanStore(0, 0).
const (
	DefaultMaxTraces        = 256
	DefaultMaxSpansPerTrace = 2048
)

type traceEntry struct {
	spans   []SpanData
	updated int64 // store-local tick of last append, for LRU eviction
	dropped int   // spans discarded once the per-trace cap was hit
}

// SpanStore is a bounded in-memory span repository implementing SpanSink.
type SpanStore struct {
	mu        sync.Mutex
	traces    map[TraceID]*traceEntry
	tick      int64
	maxTraces int
	maxSpans  int
}

// NewSpanStore builds a store holding at most maxTraces traces of
// maxSpansPerTrace spans each (<=0 picks the defaults).
func NewSpanStore(maxTraces, maxSpansPerTrace int) *SpanStore {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultMaxSpansPerTrace
	}
	return &SpanStore{
		traces:    make(map[TraceID]*traceEntry),
		maxTraces: maxTraces,
		maxSpans:  maxSpansPerTrace,
	}
}

// OnSpanEnd implements SpanSink.
func (s *SpanStore) OnSpanEnd(d SpanData) {
	if d.Trace.IsZero() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tick++
	e := s.traces[d.Trace]
	if e == nil {
		if len(s.traces) >= s.maxTraces {
			s.evictOldestLocked()
		}
		e = &traceEntry{}
		s.traces[d.Trace] = e
	}
	e.updated = s.tick
	if len(e.spans) >= s.maxSpans {
		e.dropped++
		return
	}
	e.spans = append(e.spans, d)
}

func (s *SpanStore) evictOldestLocked() {
	var victim TraceID
	oldest := int64(1<<63 - 1)
	for id, e := range s.traces {
		if e.updated < oldest {
			oldest, victim = e.updated, id
		}
	}
	delete(s.traces, victim)
}

// TraceSummary is one row of the trace listing.
type TraceSummary struct {
	Trace   TraceID   `json:"trace"`
	Root    string    `json:"root,omitempty"` // name of the root span, if ended
	Spans   int       `json:"spans"`
	Dropped int       `json:"dropped,omitempty"`
	Start   time.Time `json:"start"`
	End     time.Time `json:"end"`
}

// Traces lists the stored traces, most recently updated first.
func (s *SpanStore) Traces() []TraceSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	type row struct {
		sum  TraceSummary
		tick int64
	}
	rows := make([]row, 0, len(s.traces))
	for id, e := range s.traces {
		sum := TraceSummary{Trace: id, Spans: len(e.spans), Dropped: e.dropped}
		for i, sp := range e.spans {
			if i == 0 || sp.Start.Before(sum.Start) {
				sum.Start = sp.Start
			}
			if sp.End.After(sum.End) {
				sum.End = sp.End
			}
			if sp.Parent.IsZero() {
				sum.Root = sp.Name
			}
		}
		rows = append(rows, row{sum, e.updated})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].tick > rows[j].tick })
	out := make([]TraceSummary, len(rows))
	for i, r := range rows {
		out[i] = r.sum
	}
	return out
}

// Trace returns a copy of the stored spans of one trace (nil if unknown)
// plus how many spans the per-trace cap discarded.
func (s *SpanStore) Trace(id TraceID) (spans []SpanData, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.traces[id]
	if e == nil {
		return nil, 0
	}
	return append([]SpanData(nil), e.spans...), e.dropped
}

// SpanNode is one node of an assembled span tree.
type SpanNode struct {
	SpanData
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildTree assembles spans into a forest. Spans whose parent is absent
// (still open, evicted, or living in another process — a client attempt
// span is a parent the server never stores) become roots themselves, so a
// partial trace still renders instead of vanishing. Roots and children are
// ordered by start time; ties break on span id for determinism.
func BuildTree(spans []SpanData) []*SpanNode {
	nodes := make(map[SpanID]*SpanNode, len(spans))
	for _, d := range spans {
		nodes[d.ID] = &SpanNode{SpanData: d}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if p, ok := nodes[n.Parent]; ok && !n.Parent.IsZero() && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var order func([]*SpanNode)
	order = func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool {
			if !ns[i].Start.Equal(ns[j].Start) {
				return ns[i].Start.Before(ns[j].Start)
			}
			return ns[i].ID.String() < ns[j].ID.String()
		})
		for _, n := range ns {
			order(n.Children)
		}
	}
	order(roots)
	return roots
}

// WriteWaterfall renders the spans of one trace as a self-contained HTML
// waterfall — zero scripts, zero external assets, just nested divs with
// offset/width computed server-side. Meant for a human squinting at one
// slow question, not for a dashboard.
func WriteWaterfall(w io.Writer, trace TraceID, spans []SpanData) error {
	roots := BuildTree(spans)
	var min, max time.Time
	for i, d := range spans {
		if i == 0 || d.Start.Before(min) {
			min = d.Start
		}
		if d.End.After(max) {
			max = d.End
		}
	}
	total := max.Sub(min)
	if total <= 0 {
		total = time.Nanosecond
	}
	if _, err := fmt.Fprintf(w, waterfallHeader, trace.String(), trace.String(), len(spans), total); err != nil {
		return err
	}
	var walk func(ns []*SpanNode, depth int) error
	walk = func(ns []*SpanNode, depth int) error {
		for _, n := range ns {
			left := float64(n.Start.Sub(min)) / float64(total) * 100
			width := float64(n.Duration()) / float64(total) * 100
			if width < 0.2 {
				width = 0.2
			}
			class := "span"
			if n.Status == "error" {
				class = "span err"
			}
			title := fmt.Sprintf("%s · %s · span %s", n.Name, n.Duration(), n.ID)
			for _, a := range n.Attrs {
				title += fmt.Sprintf(" · %s=%s", a.Key, a.Value)
			}
			_, err := fmt.Fprintf(w,
				"<div class=\"row\" style=\"padding-left:%dpx\"><span class=\"name\">%s</span>"+
					"<span class=\"lane\"><span class=\"%s\" style=\"left:%.2f%%;width:%.2f%%\" title=\"%s\"></span></span>"+
					"<span class=\"dur\">%s</span></div>\n",
				depth*14, html.EscapeString(n.Name), class, left, width,
				html.EscapeString(title), n.Duration())
			if err != nil {
				return err
			}
			if err := walk(n.Children, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(roots, 0); err != nil {
		return err
	}
	_, err := io.WriteString(w, "</body></html>\n")
	return err
}

const waterfallHeader = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>trace %s</title><style>
body{font:13px/1.5 monospace;margin:1em;background:#fafafa;color:#222}
h1{font-size:15px}
.row{display:flex;align-items:center;border-bottom:1px solid #eee}
.name{flex:0 0 22em;overflow:hidden;text-overflow:ellipsis;white-space:nowrap}
.lane{flex:1;position:relative;height:14px;background:#f0f0f0}
.span{position:absolute;top:2px;height:10px;background:#4a7fb5;border-radius:2px}
.span.err{background:#c0392b}
.dur{flex:0 0 8em;text-align:right;color:#666}
</style></head><body>
<h1>trace %s · %d spans · %s</h1>
`

// FlightRecorder keeps the last N ended spans in a ring, regardless of
// trace, implementing SpanSink. Snapshot returns them oldest-first.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []SpanData
	next int
	full bool
}

// NewFlightRecorder builds a recorder holding the most recent n spans
// (<=0 picks 256).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 256
	}
	return &FlightRecorder{ring: make([]SpanData, n)}
}

// OnSpanEnd implements SpanSink.
func (f *FlightRecorder) OnSpanEnd(d SpanData) {
	f.mu.Lock()
	f.ring[f.next] = d
	f.next++
	if f.next == len(f.ring) {
		f.next, f.full = 0, true
	}
	f.mu.Unlock()
}

// Snapshot returns the recorded spans, oldest first.
func (f *FlightRecorder) Snapshot() []SpanData {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.full {
		return append([]SpanData(nil), f.ring[:f.next]...)
	}
	out := make([]SpanData, 0, len(f.ring))
	out = append(out, f.ring[f.next:]...)
	out = append(out, f.ring[:f.next]...)
	return out
}
