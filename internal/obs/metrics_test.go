package obs

import (
	"math"
	"strings"
	"testing"
)

func expose(r *Registry) string {
	var sb strings.Builder
	r.WritePrometheus(&sb)
	return sb.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ist_test_total", "things counted")
	c.Inc()
	c.Add(4)
	got := expose(r)
	want := "# HELP ist_test_total things counted\n# TYPE ist_test_total counter\nist_test_total 5\n"
	if got != want {
		t.Fatalf("exposition:\n%q\nwant\n%q", got, want)
	}
	if c.Value() != 5 {
		t.Fatalf("Value() = %d, want 5", c.Value())
	}
}

func TestCounterRejectsDecrement(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	NewRegistry().Counter("ist_x_total", "x").Add(-1)
}

func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("ist_esc_total", "line one\nback\\slash")
	got := expose(r)
	if !strings.Contains(got, `# HELP ist_esc_total line one\nback\\slash`+"\n") {
		t.Fatalf("HELP not escaped:\n%s", got)
	}
	if strings.Count(got, "\n") != 3 {
		t.Fatalf("escaped newline leaked into output:\n%q", got)
	}
}

func TestGaugeExposition(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("ist_live", "live things")
	g.Set(2.5)
	if got := expose(r); !strings.Contains(got, "ist_live 2.5\n") {
		t.Fatalf("gauge exposition:\n%s", got)
	}
	g.Set(0)
	if got := expose(r); !strings.Contains(got, "ist_live 0\n") {
		t.Fatalf("gauge exposition after reset:\n%s", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("ist_solves_total", "solves by status", "status")
	cv.With("optimal").Add(3)
	cv.With("infeasible").Inc()
	if cv.With("optimal").Value() != 3 {
		t.Fatal("With is not idempotent per label value")
	}
	got := expose(r)
	// Children expose sorted by rendered label, after one HELP/TYPE header.
	want := "# HELP ist_solves_total solves by status\n" +
		"# TYPE ist_solves_total counter\n" +
		`ist_solves_total{status="infeasible"} 1` + "\n" +
		`ist_solves_total{status="optimal"} 3` + "\n"
	if got != want {
		t.Fatalf("vec exposition:\n%q\nwant\n%q", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("ist_weird_total", "weird labels", "v")
	cv.With("a\"b\\c\nd").Inc()
	got := expose(r)
	if !strings.Contains(got, `ist_weird_total{v="a\"b\\c\nd"} 1`+"\n") {
		t.Fatalf("label not escaped:\n%q", got)
	}
}

func TestCounterVecArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	NewRegistry().CounterVec("ist_v_total", "v", "a", "b").With("only-one")
}

// TestHistogramInvariants pins the exposition-format contract scrapers rely
// on: cumulative non-decreasing _bucket values, an explicit +Inf bucket equal
// to _count, and a _sum equal to the total of the observations.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ist_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	got := expose(r)
	wantLines := []string{
		"# HELP ist_lat_seconds latency",
		"# TYPE ist_lat_seconds histogram",
		`ist_lat_seconds_bucket{le="0.1"} 1`,
		`ist_lat_seconds_bucket{le="1"} 3`,
		`ist_lat_seconds_bucket{le="10"} 4`,
		`ist_lat_seconds_bucket{le="+Inf"} 5`,
		"ist_lat_seconds_sum 56.05",
		"ist_lat_seconds_count 5",
	}
	if got != strings.Join(wantLines, "\n")+"\n" {
		t.Fatalf("histogram exposition:\n%s\nwant:\n%s", got, strings.Join(wantLines, "\n"))
	}
	if h.Count() != 5 {
		t.Fatalf("Count() = %d, want 5", h.Count())
	}
}

func TestHistogramSortsBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ist_b_seconds", "b", []float64{5, 0.5, 1})
	h.Observe(0.7)
	got := expose(r)
	i1 := strings.Index(got, `le="0.5"`)
	i2 := strings.Index(got, `le="1"`)
	i3 := strings.Index(got, `le="5"`)
	if i1 < 0 || i2 < 0 || i3 < 0 || !(i1 < i2 && i2 < i3) {
		t.Fatalf("buckets not sorted:\n%s", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ist_same_total", "first help wins")
	b := r.Counter("ist_same_total", "ignored")
	if a != b {
		t.Fatal("re-registering a counter returned a different instance")
	}
	a.Inc()
	if strings.Count(expose(r), "ist_same_total") != 3 {
		t.Fatalf("duplicate exposition:\n%s", expose(r))
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ist_kind_total", "a counter")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("ist_kind_total", "now a gauge")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	for _, name := range []string{"", "1starts_with_digit", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			NewRegistry().Counter(name, "bad")
		}()
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
		3:            "3",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}
