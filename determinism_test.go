package ist

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ist/internal/clock"
	"ist/internal/lp"
	"ist/internal/obs"
)

// This file is the facade-level determinism regression suite for the
// parallel interaction engine and the shared preprocessing cache (DESIGN.md
// §14): for every algorithm, every worker count, and cold/warm cache states,
// the full interactive transcript — every question, the result, the question
// count — and the complete observer event stream must be bit-identical to
// the serial, uncached run.

// runTranscript drives alg through a full session against hidden, capturing
// the question transcript and the raw event stream.
type runRecord struct {
	Questions [][2]Point
	Index     int
	Count     int
	Certified bool
	Events    []obs.Event
}

func freezeLPClockFacade(t *testing.T) {
	t.Helper()
	lp.SetClock(clock.NewFake(time.Unix(0, 0)))
	t.Cleanup(func() { lp.SetClock(nil) })
}

func runTranscript(t *testing.T, alg Algorithm, band []Point, k int, hidden Point, maxQ int) runRecord {
	t.Helper()
	rec := &obs.Recorder{}
	opts := []SessionOption{WithObserver(rec)}
	if maxQ > 0 {
		opts = append(opts, WithMaxQuestions(maxQ))
	}
	s := NewSessionContext(nil, alg, band, k, opts...)
	defer s.Close()
	var r runRecord
	for steps := 0; ; steps++ {
		if steps > 10000 {
			t.Fatal("session never finished")
		}
		p, q, done := s.Next()
		if done {
			break
		}
		r.Questions = append(r.Questions, [2]Point{p, q})
		if err := s.Answer(hidden.Dot(p) >= hidden.Dot(q)); err != nil {
			t.Fatal(err)
		}
	}
	_, idx, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	r.Index = idx
	r.Count = s.Questions()
	if cert, ok := s.Certificate(); ok {
		r.Certified = cert.Certified
	}
	r.Events = append([]obs.Event(nil), rec.Events()...)
	return r
}

func sameRun(t *testing.T, name string, want, got runRecord) {
	t.Helper()
	if !reflect.DeepEqual(want.Questions, got.Questions) {
		t.Fatalf("%s: question transcript diverges (%d vs %d questions)", name, len(got.Questions), len(want.Questions))
	}
	if want.Index != got.Index || want.Count != got.Count || want.Certified != got.Certified {
		t.Fatalf("%s: outcome diverges: got (%d, %dq, cert=%v) want (%d, %dq, cert=%v)",
			name, got.Index, got.Count, got.Certified, want.Index, want.Count, want.Certified)
	}
	if !reflect.DeepEqual(want.Events, got.Events) {
		n := len(got.Events)
		if len(want.Events) < n {
			n = len(want.Events)
		}
		at := n
		for i := 0; i < n; i++ {
			if want.Events[i] != got.Events[i] {
				at = i
				break
			}
		}
		t.Fatalf("%s: event streams diverge at event %d (%d vs %d events)",
			name, at, len(got.Events), len(want.Events))
	}
}

// TestParallelismTranscriptInvariant checks every algorithm x worker-count
// combination against the serial baseline.
func TestParallelismTranscriptInvariant(t *testing.T) {
	freezeLPClockFacade(t)
	rng := rand.New(rand.NewSource(11))
	ds := AntiCorrelated(rng, 300, 5)
	k := 3
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 5)

	ds2 := AntiCorrelated(rand.New(rand.NewSource(11)), 300, 2)
	band2 := Preprocess(ds2.Points, k)
	hidden2 := RandomUtility(rng, 2)

	cases := []struct {
		name   string
		make   func() Algorithm
		band   []Point
		hidden Point
	}{
		{"hdpi-accurate", func() Algorithm { return NewHDPIAccurate(5) }, band, hidden},
		{"robust", func() Algorithm { return NewRobustHDPI(5) }, band, hidden},
		{"rh", func() Algorithm { return NewRH(5) }, band, hidden},
		{"2dpi", func() Algorithm { return NewTwoDPI() }, band2, hidden2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := runTranscript(t, tc.make(), tc.band, k, tc.hidden, 0)
			for _, workers := range []int{1, 2, 4, 8} {
				alg := tc.make()
				SetParallelism(alg, workers)
				got := runTranscript(t, alg, tc.band, k, tc.hidden, 0)
				sameRun(t, tc.name, want, got)
			}
		})
	}
}

// TestParallelismBudgetExhaustionInvariant repeats the check under a
// question budget tight enough to force the degradation ladder: the stop
// probe sequence, the degradation events, and the uncertified outcome must
// all match the serial engine exactly.
func TestParallelismBudgetExhaustionInvariant(t *testing.T) {
	freezeLPClockFacade(t)
	rng := rand.New(rand.NewSource(13))
	ds := AntiCorrelated(rng, 300, 5)
	k := 3
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 5)

	for _, budget := range []int{1, 3, 8} {
		want := runTranscript(t, NewHDPIAccurate(5), band, k, hidden, budget)
		for _, workers := range []int{2, 4, 8} {
			alg := NewHDPIAccurate(5)
			SetParallelism(alg, workers)
			got := runTranscript(t, alg, band, k, hidden, budget)
			sameRun(t, "budget", want, got)
		}
	}
}

// TestPrepCacheTranscriptInvariant checks the cache's taping contract at the
// facade: a cold populate, a warm hit, and a parallel warm hit must all be
// indistinguishable from an uncached run, and budgeted runs (which may only
// Lookup, never populate) must be indistinguishable whether they hit or
// miss the cache.
func TestPrepCacheTranscriptInvariant(t *testing.T) {
	freezeLPClockFacade(t)
	rng := rand.New(rand.NewSource(17))
	ds := AntiCorrelated(rng, 300, 5)
	k := 3
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 5)

	want := runTranscript(t, NewHDPIAccurate(5), band, k, hidden, 0)

	cache := NewPreprocessCache(0)
	cold := NewHDPIAccurate(5)
	if !UsePreprocessCache(cold, cache, band, k) {
		t.Fatal("hdpi-accurate should accept a preprocessing cache")
	}
	sameRun(t, "cold populate", want, runTranscript(t, cold, band, k, hidden, 0))
	if s := cache.Stats(); s.Misses == 0 {
		t.Fatal("cold run did not populate the cache")
	}

	warm := NewHDPIAccurate(5)
	UsePreprocessCache(warm, cache, band, k)
	sameRun(t, "warm hit", want, runTranscript(t, warm, band, k, hidden, 0))
	if s := cache.Stats(); s.Hits == 0 {
		t.Fatal("warm run did not hit the cache")
	}

	both := NewHDPIAccurate(5)
	SetParallelism(both, 4)
	UsePreprocessCache(both, cache, band, k)
	sameRun(t, "parallel warm hit", want, runTranscript(t, both, band, k, hidden, 0))

	// Budgeted: compare serial-uncached vs cached (warm) vs cached (cold,
	// where Lookup misses and the run computes locally without populating).
	budget := 5
	wantB := runTranscript(t, NewHDPIAccurate(5), band, k, hidden, budget)
	warmB := NewHDPIAccurate(5)
	UsePreprocessCache(warmB, cache, band, k)
	sameRun(t, "budget warm", wantB, runTranscript(t, warmB, band, k, hidden, budget))

	fresh := NewPreprocessCache(0)
	coldB := NewHDPIAccurate(5)
	UsePreprocessCache(coldB, fresh, band, k)
	sameRun(t, "budget cold", wantB, runTranscript(t, coldB, band, k, hidden, budget))
	if s := fresh.Stats(); s.Entries != 0 {
		t.Fatalf("budgeted run populated the cache (%d entries) — a mid-scan stop could poison it", s.Entries)
	}
}

// TestPreprocessCachedMatchesPreprocess checks the skyband entry point.
func TestPreprocessCachedMatchesPreprocess(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ds := AntiCorrelated(rng, 400, 4)
	k := 5
	want := Preprocess(ds.Points, k)

	cache := NewPreprocessCache(0)
	cold := PreprocessCached(cache, ds.Points, k)
	warm := PreprocessCached(cache, ds.Points, k)
	if !reflect.DeepEqual(want, cold) || !reflect.DeepEqual(want, warm) {
		t.Fatal("cached skyband diverges from Preprocess")
	}
	if s := cache.Stats(); s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("unexpected cache stats %+v", s)
	}
	// Each call owns its slice (vectors alias the dataset, exactly like
	// Preprocess): reordering one caller's band cannot disturb another's.
	cold[0], cold[1] = cold[1], cold[0]
	again := PreprocessCached(cache, ds.Points, k)
	if !reflect.DeepEqual(want, again) {
		t.Fatal("mutating a returned band's slice corrupted the cache")
	}
}
