package ist

import (
	"io"

	"ist/internal/dataset"
)

// Dataset input/output: load real tabular data, normalize it into the
// paper's (0,1] larger-is-better domain, and export datasets as CSV.

// Orientation declares attribute direction for normalization.
type Orientation = dataset.Orientation

// Attribute orientations for NormalizeDataset.
const (
	// LargerBetter keeps the attribute's direction (e.g. horse power).
	LargerBetter = dataset.LargerBetter
	// SmallerBetter flips it (e.g. price, used kilometers).
	SmallerBetter = dataset.SmallerBetter
)

// ReadCSV parses comma-separated numeric rows (optional header, '#'
// comments) into a dataset.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	return dataset.ReadCSV(r, name)
}

// WriteCSV writes a dataset as comma-separated rows.
func WriteCSV(w io.Writer, d *Dataset) error { return d.WriteCSV(w) }

// NormalizeDataset rescales every attribute into (0,1] with
// larger-is-better orientation — the preprocessing required before feeding
// raw data to the algorithms. Pass nil orientations when every attribute is
// already larger-is-better.
func NormalizeDataset(d *Dataset, orientations []Orientation) (*Dataset, error) {
	return d.Normalize(orientations)
}
