package client

// White-box tests for the resilience stack: retry classification, backoff
// jitter bounds, Retry-After honoring, the circuit breaker's lifecycle, and
// seq-conflict resync. Every test injects its transport, clock, RNG and
// Sleep hook, so nothing here sleeps or reads the wall clock.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"ist/internal/clock"
	"ist/internal/obs"
)

// scriptedTransport replays a fixed list of outcomes, one per attempt.
type scriptedTransport struct {
	t     *testing.T
	steps []func(*http.Request) (*http.Response, error)
	calls int
	// lastDeadline records whether the final request carried a deadline.
	sawDeadline bool
}

func (s *scriptedTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if s.calls >= len(s.steps) {
		s.t.Fatalf("transport called %d times, only %d steps scripted", s.calls+1, len(s.steps))
	}
	_, s.sawDeadline = req.Context().Deadline()
	step := s.steps[s.calls]
	s.calls++
	return step(req)
}

func respond(code int, body string, hdr map[string]string) func(*http.Request) (*http.Response, error) {
	return func(req *http.Request) (*http.Response, error) {
		h := http.Header{}
		for k, v := range hdr {
			h.Set(k, v)
		}
		return &http.Response{
			StatusCode: code,
			Header:     h,
			Body:       io.NopCloser(strings.NewReader(body)),
			Request:    req,
		}, nil
	}
}

func failConn(req *http.Request) (*http.Response, error) {
	return nil, fmt.Errorf("dial tcp: connection refused")
}

const stateSeq0 = `{"id":"s1","seq":0,"questions":0,"done":false,"question":{"option1":[1,0],"option2":[0,1]}}`

// newTestClient wires a client around the scripted transport with fully
// injected time: sleeps are recorded, never performed.
func newTestClient(t *testing.T, tr *scriptedTransport, opt Options) (*Client, *[]time.Duration) {
	t.Helper()
	var sleeps []time.Duration
	opt.HTTP = &http.Client{Transport: tr}
	if opt.Sleep == nil {
		opt.Sleep = func(ctx context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return ctx.Err()
		}
	}
	if opt.Rand == nil {
		opt.Rand = rand.New(rand.NewSource(42))
	}
	if opt.Clock == nil {
		opt.Clock = clock.NewFake(time.Unix(1_700_000_000, 0))
	}
	c, err := New("http://ist.test", opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, &sleeps
}

func TestRetriesTransientThenSucceeds(t *testing.T) {
	reg := obs.NewRegistry()
	tr := &scriptedTransport{t: t, steps: []func(*http.Request) (*http.Response, error){
		respond(http.StatusServiceUnavailable, "overloaded", nil),
		failConn,
		respond(http.StatusCreated, stateSeq0, nil),
	}}
	c, sleeps := newTestClient(t, tr, Options{Metrics: reg})
	s, err := c.Create(context.Background(), "")
	if err != nil {
		t.Fatalf("Create after transients: %v", err)
	}
	if s.ID() != "s1" || s.State().Question == nil {
		t.Fatalf("unexpected session state: %+v", s.State())
	}
	if tr.calls != 3 {
		t.Fatalf("transport calls = %d, want 3", tr.calls)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("sleeps = %v, want exactly 2 backoffs", *sleeps)
	}
	if got := c.retries.With("status_503").Value() + c.retries.With("network").Value(); got != 2 {
		t.Fatalf("retry counters = %d, want 2 (one per transient failure)", got)
	}
	if !tr.sawDeadline {
		t.Fatal("attempt carried no per-request deadline")
	}
}

func TestBackoffDoublesWithBoundedJitter(t *testing.T) {
	tr := &scriptedTransport{t: t}
	c, _ := newTestClient(t, tr, Options{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond})
	// Nominal schedule: 100ms, 200ms, 400ms, 400ms (capped). Jitter keeps
	// each delay in [nominal/2, nominal].
	for n, nominal := range []time.Duration{100, 200, 400, 400, 400} {
		nominal *= time.Millisecond
		got := c.backoff(n)
		if got < nominal/2 || got > nominal {
			t.Errorf("backoff(%d) = %v, want within [%v, %v]", n, got, nominal/2, nominal)
		}
	}
}

func TestBackoffIsDeterministicPerSeed(t *testing.T) {
	mk := func() *Client {
		tr := &scriptedTransport{t: t}
		c, _ := newTestClient(t, tr, Options{Rand: rand.New(rand.NewSource(7))})
		return c
	}
	a, b := mk(), mk()
	for n := 0; n < 5; n++ {
		if da, db := a.backoff(n), b.backoff(n); da != db {
			t.Fatalf("backoff(%d) differs across identical seeds: %v vs %v", n, da, db)
		}
	}
}

func TestRetryAfterOverridesShorterBackoff(t *testing.T) {
	tr := &scriptedTransport{t: t, steps: []func(*http.Request) (*http.Response, error){
		respond(http.StatusTooManyRequests, "slow down", map[string]string{"Retry-After": "7"}),
		respond(http.StatusOK, stateSeq0, nil),
	}}
	c, sleeps := newTestClient(t, tr, Options{BaseBackoff: 10 * time.Millisecond})
	if _, _, err := c.do(context.Background(), http.MethodGet, "/sessions/s1", nil, nil); err != nil {
		t.Fatalf("do: %v", err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] != 7*time.Second {
		t.Fatalf("sleeps = %v, want exactly [7s] from the Retry-After hint", *sleeps)
	}
}

func TestRetryAfterShorterThanBackoffIgnored(t *testing.T) {
	tr := &scriptedTransport{t: t, steps: []func(*http.Request) (*http.Response, error){
		respond(http.StatusServiceUnavailable, "busy", map[string]string{"Retry-After": "0"}),
		respond(http.StatusOK, stateSeq0, nil),
	}}
	c, sleeps := newTestClient(t, tr, Options{BaseBackoff: time.Second, MaxBackoff: time.Second})
	if _, _, err := c.do(context.Background(), http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("do: %v", err)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] < 500*time.Millisecond {
		t.Fatalf("sleeps = %v, want the backoff schedule to win over Retry-After: 0", *sleeps)
	}
}

func TestNonRetryableStatusFailsImmediately(t *testing.T) {
	reg := obs.NewRegistry()
	tr := &scriptedTransport{t: t, steps: []func(*http.Request) (*http.Response, error){
		respond(http.StatusBadRequest, "prefer must be 1 or 2", nil),
	}}
	c, sleeps := newTestClient(t, tr, Options{Metrics: reg})
	_, err := c.stateRequest(context.Background(), http.MethodPost, "/sessions", []byte("{}"), nil, nil)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want *StatusError with 400", err)
	}
	if tr.calls != 1 || len(*sleeps) != 0 {
		t.Fatalf("4xx was retried: %d calls, sleeps %v", tr.calls, *sleeps)
	}
}

func TestTruncatedBodyIsRetried(t *testing.T) {
	truncated := func(req *http.Request) (*http.Response, error) {
		return &http.Response{
			StatusCode: http.StatusOK,
			Header:     http.Header{},
			Body:       io.NopCloser(io.MultiReader(strings.NewReader(`{"id":"s`), errReader{})),
			Request:    req,
		}, nil
	}
	tr := &scriptedTransport{t: t, steps: []func(*http.Request) (*http.Response, error){
		truncated,
		respond(http.StatusOK, stateSeq0, nil),
	}}
	c, _ := newTestClient(t, tr, Options{})
	st, err := c.stateRequest(context.Background(), http.MethodGet, "/sessions/s1", nil, nil, nil)
	if err != nil {
		t.Fatalf("stateRequest after truncation: %v", err)
	}
	if st.ID != "s1" {
		t.Fatalf("state = %+v, want the clean retry's", st)
	}
	if tr.calls != 2 {
		t.Fatalf("transport calls = %d, want 2 (truncated + retry)", tr.calls)
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, io.ErrUnexpectedEOF }

func TestExhaustedAttemptsReportsLastError(t *testing.T) {
	steps := make([]func(*http.Request) (*http.Response, error), 3)
	for i := range steps {
		steps[i] = respond(http.StatusBadGateway, "upstream down", nil)
	}
	tr := &scriptedTransport{t: t, steps: steps}
	c, sleeps := newTestClient(t, tr, Options{MaxAttempts: 3})
	_, _, err := c.do(context.Background(), http.MethodGet, "/sessions/s1", nil, nil)
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("err = %v, want exhaustion after 3 attempts", err)
	}
	if tr.calls != 3 || len(*sleeps) != 2 {
		t.Fatalf("calls=%d sleeps=%v, want 3 attempts with 2 backoffs", tr.calls, *sleeps)
	}
}

func TestConflictResyncsSessionState(t *testing.T) {
	authoritative := `{"id":"s1","seq":2,"questions":2,"done":false,"question":{"option1":[3,4],"option2":[4,3]}}`
	tr := &scriptedTransport{t: t, steps: []func(*http.Request) (*http.Response, error){
		respond(http.StatusCreated, stateSeq0, nil),
		respond(http.StatusConflict, authoritative, nil),
	}}
	c, _ := newTestClient(t, tr, Options{})
	s, err := c.Create(context.Background(), "")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	_, err = s.Answer(context.Background(), 1)
	var conflict *ConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("err = %v, want *ConflictError", err)
	}
	if conflict.State.Seq != 2 {
		t.Fatalf("conflict state seq = %d, want the server's 2", conflict.State.Seq)
	}
	if got := s.State(); got.Seq != 2 || got.Question == nil || got.Question.Option1[0] != 3 {
		t.Fatalf("cached state not resynced: %+v", got)
	}
}

func TestAnswerValidatesPrefer(t *testing.T) {
	s := &Session{c: &Client{}, id: "s1"}
	if _, err := s.Answer(context.Background(), 3); err == nil {
		t.Fatal("Answer(3) accepted, want validation error")
	}
}

func TestBreakerOpensFailsFastAndRecovers(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	reg := obs.NewRegistry()
	steps := []func(*http.Request) (*http.Response, error){failConn, failConn}
	tr := &scriptedTransport{t: t, steps: steps}
	c, _ := newTestClient(t, tr, Options{
		MaxAttempts:      2,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
		Clock:            fake,
		Metrics:          reg,
	})
	if _, _, err := c.do(context.Background(), http.MethodGet, "/x", nil, nil); err == nil {
		t.Fatal("want failure from dead transport")
	}
	if c.trips.Value() != 1 {
		t.Fatalf("breaker trips = %v, want 1", c.trips.Value())
	}

	// Open circuit: fail fast without touching the transport.
	callsBefore := tr.calls
	_, _, err := c.do(context.Background(), http.MethodGet, "/x", nil, nil)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen while circuit is open", err)
	}
	if tr.calls != callsBefore {
		t.Fatal("open breaker still reached the transport")
	}

	// After the cooldown a single probe goes through; success closes it.
	fake.Advance(11 * time.Second)
	tr.steps = append(tr.steps, respond(http.StatusOK, stateSeq0, nil))
	if _, _, err := c.do(context.Background(), http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("probe after cooldown failed: %v", err)
	}
	// Closed again: normal traffic flows.
	tr.steps = append(tr.steps, respond(http.StatusOK, stateSeq0, nil))
	if _, _, err := c.do(context.Background(), http.MethodGet, "/x", nil, nil); err != nil {
		t.Fatalf("request after recovery failed: %v", err)
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	b := newBreaker(1, 10*time.Second, fake)
	b.failure() // trip
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("allow during cooldown = %v, want ErrBreakerOpen", err)
	}
	fake.Advance(11 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe admitted, want one at a time")
	}
	b.failure() // probe failed: reopen for a fresh window
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("circuit closed after failed probe, want reopened")
	}
	fake.Advance(11 * time.Second)
	if err := b.allow(); err != nil {
		t.Fatalf("probe after second cooldown rejected: %v", err)
	}
	b.success()
	if err := b.allow(); err != nil {
		t.Fatalf("closed circuit rejecting traffic: %v", err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Second, clock.NewFake(time.Unix(0, 0)))
	for i := 0; i < 100; i++ {
		b.failure()
	}
	if err := b.allow(); err != nil {
		t.Fatalf("disabled breaker rejected a request: %v", err)
	}
}

func TestCallerContextCancelsRetryLoop(t *testing.T) {
	steps := make([]func(*http.Request) (*http.Response, error), 10)
	for i := range steps {
		steps[i] = respond(http.StatusServiceUnavailable, "down", nil)
	}
	tr := &scriptedTransport{t: t, steps: steps}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	c, _ := newTestClient(t, tr, Options{
		MaxAttempts: 10,
		Sleep: func(ctx context.Context, d time.Duration) error {
			calls++
			if calls == 2 {
				cancel() // the user gave up mid-backoff
			}
			return ctx.Err()
		},
	})
	_, _, err := c.do(ctx, http.MethodGet, "/x", nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if tr.calls >= 10 {
		t.Fatalf("retry loop ignored cancellation: %d attempts", tr.calls)
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0}, {"1", time.Second}, {"30", 30 * time.Second},
		{"-5", 0}, {"soon", 0}, {"Tue, 29 Oct 2024 16:56:32 GMT", 0},
	}
	for _, tc := range cases {
		h := http.Header{}
		if tc.in != "" {
			h.Set("Retry-After", tc.in)
		}
		if got := parseRetryAfter(h); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestRetryReasonBuckets(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{&transientStatusError{status: 503}, "status_503"},
		{&transientStatusError{status: 429}, "status_429"},
		{fmt.Errorf("client: truncated response: %w", io.ErrUnexpectedEOF), "truncated"},
		{fmt.Errorf("client: dial tcp: connection refused"), "network"},
	}
	for _, tc := range cases {
		if got := retryReason(tc.err); got != tc.want {
			t.Errorf("retryReason(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

func TestNewRejectsEmptyURL(t *testing.T) {
	if _, err := New("", Options{}); err == nil {
		t.Fatal("New(\"\") succeeded, want error")
	}
}

func TestCloseToleratesGoneSession(t *testing.T) {
	tr := &scriptedTransport{t: t, steps: []func(*http.Request) (*http.Response, error){
		respond(http.StatusNotFound, "no such session", nil),
	}}
	c, _ := newTestClient(t, tr, Options{})
	s := &Session{c: c, id: "ghost"}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("Close on gone session: %v", err)
	}
}
