// Package client is a dependency-free, retry-safe Go client for the
// istserve session API (internal/server): create a session, read questions,
// post answers, collect the result.
//
// The paper's dialogue is strictly sequential and every question costs real
// human effort, so the client is built for hostile networks: every request
// runs under its own deadline, transient failures (connection errors,
// truncated responses, 429/503/5xx) are retried with capped exponential
// backoff and injected-RNG jitter, Retry-After hints from the server's
// backpressure responses are honored, and a circuit breaker fails fast when
// the server is persistently down. Retrying a POST /answer blindly is safe
// because the wire protocol is exactly-once: each answer quotes the seq of
// the question it answers, and the server absorbs duplicates idempotently
// (DESIGN.md §12).
//
// Session creation is NOT idempotent: a retried create whose original
// succeeded (response lost) leaves an orphan session behind, which the
// server's idle reaper collects. That is garbage, not corruption — the
// trade is deliberate.
//
// Time and randomness are injected (clock.Clock, *rand.Rand, a Sleep hook)
// so the retry schedule is fully deterministic under test; the wallclock
// and detrand analyzers enforce this.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ist"
	"ist/internal/clock"
	"ist/internal/obs"
)

// Options tunes the client's resilience machinery. The zero value is usable:
// every field has a production default.
type Options struct {
	// HTTP is the underlying HTTP client (nil = a fresh http.Client; the
	// per-request deadline comes from RequestTimeout, not http.Client.Timeout).
	HTTP *http.Client
	// MaxAttempts bounds tries per request, the first included (0 = 6).
	MaxAttempts int
	// BaseBackoff is the first retry delay, doubled per attempt (0 = 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = 5s).
	MaxBackoff time.Duration
	// RequestTimeout is the per-attempt deadline, layered under whatever
	// deadline the caller's context carries (0 = 10s, negative = none).
	RequestTimeout time.Duration
	// Rand supplies backoff jitter (nil = a private generator seeded from
	// the process id — never from the wall clock, so tests that inject
	// nothing still replay deterministically per pid).
	Rand *rand.Rand
	// Clock feeds the circuit breaker's cooldown window (nil = clock.Real).
	Clock clock.Clock
	// Sleep waits between retries (nil = a timer honoring ctx cancellation).
	// Tests inject a fake that advances a fake clock instead of sleeping.
	Sleep func(ctx context.Context, d time.Duration) error
	// BreakerThreshold opens the circuit after this many consecutive failed
	// attempts (0 = 8, negative = breaker disabled).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects requests before
	// letting a single probe through (0 = 15s).
	BreakerCooldown time.Duration
	// Metrics, when set, registers the ist_client_* series there.
	Metrics *obs.Registry
	// Tracer, when set, instruments every exchange with spans and stamps a
	// W3C traceparent header on each HTTP attempt. The client owns the trace
	// id (it is generated when the session-root span starts at Create), and
	// the server continues the same trace on its side, so one trace covers
	// both halves of the dialogue — retries included, each as its own
	// attempt span. A nil Tracer leaves the client bit-identical to the
	// untraced build: no header, no clock reads, no RNG draws.
	Tracer *obs.Tracer
}

// Client talks to one istserve base URL. Safe for concurrent use.
type Client struct {
	base  string
	http  *http.Client
	opt   Options
	clk   clock.Clock
	sleep func(ctx context.Context, d time.Duration) error
	br    *breaker
	tr    *obs.Tracer // nil = untraced

	rngMu sync.Mutex
	rng   *rand.Rand

	// nil when no registry was supplied; use the count* helpers.
	requests *obs.CounterVec
	retries  *obs.CounterVec
	trips    *obs.Counter
}

// New builds a client for the istserve instance at baseURL (scheme + host,
// e.g. "http://localhost:8080"; a trailing slash is tolerated).
func New(baseURL string, opt Options) (*Client, error) {
	if baseURL == "" {
		return nil, errors.New("client: empty base URL")
	}
	if opt.HTTP == nil {
		opt.HTTP = &http.Client{}
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 6
	}
	if opt.BaseBackoff <= 0 {
		opt.BaseBackoff = 100 * time.Millisecond
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 5 * time.Second
	}
	if opt.RequestTimeout == 0 {
		opt.RequestTimeout = 10 * time.Second
	}
	if opt.BreakerThreshold == 0 {
		opt.BreakerThreshold = 8
	}
	if opt.BreakerCooldown <= 0 {
		opt.BreakerCooldown = 15 * time.Second
	}
	c := &Client{
		base: strings.TrimSuffix(baseURL, "/"),
		http: opt.HTTP,
		opt:  opt,
		clk:  opt.Clock,
		rng:  opt.Rand,
		tr:   opt.Tracer,
	}
	if c.clk == nil {
		c.clk = clock.Real
	}
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(int64(os.Getpid()) ^ 0x697374636c69)) // "istcli"
	}
	c.sleep = opt.Sleep
	if c.sleep == nil {
		c.sleep = timerSleep
	}
	c.br = newBreaker(opt.BreakerThreshold, opt.BreakerCooldown, c.clk)
	if reg := opt.Metrics; reg != nil {
		c.requests = reg.CounterVec(obs.MetricClientRequests,
			"API requests by final outcome (ok, conflict, error).", "outcome")
		c.retries = reg.CounterVec(obs.MetricClientRetries,
			"Request attempts retried, by failure reason.", "reason")
		c.trips = reg.Counter(obs.MetricClientBreakerTrips,
			"Times the client circuit breaker opened.")
		c.br.onTrip = c.trips.Inc
	}
	return c, nil
}

// ErrBreakerOpen is returned (wrapped) while the circuit breaker rejects
// requests; check with errors.Is.
var ErrBreakerOpen = errors.New("client: circuit breaker open")

// StatusError is a terminal non-2xx response (after retries, for retryable
// statuses).
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// ConflictError reports a 409 on answer: the quoted seq was stale or the
// session had already finished. The session's cached state has already been
// resynced to the authoritative state the server sent back — re-read the
// question and answer again.
type ConflictError struct {
	State State
}

func (e *ConflictError) Error() string {
	return fmt.Sprintf("client: seq conflict (server at seq %d, done=%v); state resynced", e.State.Seq, e.State.Done)
}

// Question is one pairwise question.
type Question struct {
	Option1 []float64 `json:"option1"`
	Option2 []float64 `json:"option2"`
}

// State mirrors the server's session state JSON (server.StateResponse —
// internal/server owns the wire contract and a cross-check test keeps the
// two in sync).
type State struct {
	ID          string           `json:"id"`
	Seq         int              `json:"seq"`
	Questions   int              `json:"questions"`
	Done        bool             `json:"done"`
	Question    *Question        `json:"question,omitempty"`
	Result      []float64        `json:"result,omitempty"`
	ResultID    int              `json:"resultId,omitempty"`
	Certificate *ist.Certificate `json:"certificate,omitempty"`
}

// Session is a handle on one server-side session. Its cached State tracks
// the last response; Answer quotes the cached seq so retries are idempotent.
// Safe for concurrent use, though the dialogue itself is sequential.
type Session struct {
	c    *Client
	id   string
	root *obs.Span // client-side session-root span; nil when untraced

	mu    sync.Mutex
	state State
}

// Create starts a session ("" = the server's default algorithm). With a
// Tracer configured, Create opens the client-side session-root span — this
// is where the trace id is minted; the create request (and every later
// answer) propagates it to the server via traceparent.
func (c *Client) Create(ctx context.Context, algorithm string) (*Session, error) {
	body, err := json.Marshal(map[string]string{"algorithm": algorithm})
	if err != nil {
		return nil, err
	}
	root := c.tr.Start("client-session", obs.WithAttrs(obs.Attr{Key: "algorithm", Value: algorithm}))
	op := root.StartChild("create")
	st, err := c.stateRequest(ctx, http.MethodPost, "/sessions", body, nil, op)
	op.SetStatus(err)
	op.End()
	if err != nil {
		root.SetStatus(err)
		root.End()
		return nil, err
	}
	root.SetAttr("session", st.ID)
	return &Session{c: c, id: st.ID, root: root, state: st}, nil
}

// Resume re-attaches to an existing session by id (e.g. after the client
// process restarted), fetching its current state. A resumed session gets a
// fresh client-side trace (the original trace id did not survive the
// restart).
func (c *Client) Resume(ctx context.Context, id string) (*Session, error) {
	root := c.tr.Start("client-session", obs.WithAttrs(obs.Attr{Key: "session", Value: id}))
	op := root.StartChild("resume")
	st, err := c.stateRequest(ctx, http.MethodGet, "/sessions/"+id, nil, nil, op)
	op.SetStatus(err)
	op.End()
	if err != nil {
		root.SetStatus(err)
		root.End()
		return nil, err
	}
	return &Session{c: c, id: id, root: root, state: st}, nil
}

// ID returns the server-assigned session id.
func (s *Session) ID() string { return s.id }

// TraceID returns the hex trace id of the session's client-side trace, or
// "" when the client is untraced. The same id shows up in the server's
// /debug/ist/traces listing — the two halves share one trace.
func (s *Session) TraceID() string {
	return s.root.TraceID().String()
}

// State returns the last state the server sent.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Answer submits the answer to the pending question (prefer is 1 or 2) and
// returns the next state. The request quotes the cached seq, so any number
// of transparent retries apply the answer exactly once. On a 409 the cached
// state is resynced and a *ConflictError returned.
func (s *Session) Answer(ctx context.Context, prefer int) (State, error) {
	if prefer != 1 && prefer != 2 {
		return State{}, fmt.Errorf("client: prefer must be 1 or 2, got %d", prefer)
	}
	s.mu.Lock()
	seq := s.state.Seq
	s.mu.Unlock()
	body, err := json.Marshal(map[string]int{"prefer": prefer, "seq": seq})
	if err != nil {
		return State{}, err
	}
	op := s.root.StartChild("answer", obs.WithAttrs(
		obs.Attr{Key: "seq", Value: strconv.Itoa(seq)},
		obs.Attr{Key: "prefer", Value: strconv.Itoa(prefer)},
	))
	st, err := s.c.stateRequest(ctx, http.MethodPost, "/sessions/"+s.id+"/answer", body, s, op)
	op.SetStatus(err)
	op.End()
	return st, err
}

// Refresh re-reads the session state from the server.
func (s *Session) Refresh(ctx context.Context) (State, error) {
	op := s.root.StartChild("refresh")
	st, err := s.c.stateRequest(ctx, http.MethodGet, "/sessions/"+s.id, nil, s, op)
	op.SetStatus(err)
	op.End()
	return st, err
}

// Close aborts the session server-side (DELETE) and ends the client-side
// session-root span. Closing an already-gone session is not an error.
func (s *Session) Close(ctx context.Context) error {
	op := s.root.StartChild("close")
	status, body, err := s.c.do(ctx, http.MethodDelete, "/sessions/"+s.id, nil, op)
	op.SetStatus(err)
	op.End()
	s.root.End()
	if err != nil {
		return err
	}
	if status == http.StatusNoContent || status == http.StatusNotFound {
		return nil
	}
	return &StatusError{Code: status, Body: string(body)}
}

// EndTrace ends the client-side session-root span without touching the
// server. Callers that finish a dialogue normally (Done=true) and never
// Close should call this so the root span reaches the tracer's sink.
func (s *Session) EndTrace() {
	s.root.End()
}

// stateRequest runs one API exchange that yields a session state, updating
// sess's cache (when non-nil) on both success and 409 resync. parent (nil
// when untraced) becomes the parent of the per-attempt spans.
func (c *Client) stateRequest(ctx context.Context, method, path string, body []byte, sess *Session, parent *obs.Span) (State, error) {
	status, respBody, err := c.do(ctx, method, path, body, parent)
	if err != nil {
		c.countRequest("error")
		return State{}, err
	}
	switch status {
	case http.StatusOK, http.StatusCreated, http.StatusConflict:
		var st State
		if err := json.Unmarshal(respBody, &st); err != nil {
			c.countRequest("error")
			return State{}, fmt.Errorf("client: bad state JSON (status %d): %w", status, err)
		}
		if sess != nil {
			sess.mu.Lock()
			sess.state = st
			sess.mu.Unlock()
		}
		if status == http.StatusConflict {
			c.countRequest("conflict")
			return st, &ConflictError{State: st}
		}
		c.countRequest("ok")
		return st, nil
	default:
		c.countRequest("error")
		return State{}, &StatusError{Code: status, Body: string(respBody)}
	}
}

// do runs one request with the full resilience stack: breaker gate,
// per-attempt deadline, retry-on-transient with jittered capped backoff and
// Retry-After honoring. It returns the final status and fully-read body;
// err is non-nil only when no usable response was obtained. Each attempt
// gets its own child span under parent, and that attempt span's context is
// what goes on the wire — so a retried POST shows up server-side as two
// sibling spans under one client operation, exactly mirroring what the
// network carried.
func (c *Client) do(ctx context.Context, method, path string, body []byte, parent *obs.Span) (int, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.opt.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Backoff before the retry; a server-provided Retry-After hint
			// overrides the schedule when it asks for longer.
			d := c.backoff(attempt - 1)
			if ra, ok := retryAfterOf(lastErr); ok && ra > d {
				d = ra
			}
			if err := c.sleep(ctx, d); err != nil {
				return 0, nil, err
			}
		}
		if err := c.br.allow(); err != nil {
			return 0, nil, err
		}
		att := parent.StartChild("attempt", obs.WithAttrs(obs.Attr{Key: "n", Value: strconv.Itoa(attempt + 1)}))
		status, respBody, retryable, err := c.attempt(ctx, method, path, body, att)
		att.SetStatus(err)
		att.End()
		if err == nil {
			c.br.success()
			return status, respBody, nil
		}
		if !retryable {
			return 0, nil, err // caller's context died or the request is malformed
		}
		c.br.failure()
		lastErr = err
		c.countRetry(retryReason(lastErr))
		if ctx.Err() != nil {
			return 0, nil, fmt.Errorf("%w (last attempt: %v)", ctx.Err(), lastErr)
		}
	}
	return 0, nil, fmt.Errorf("client: %s %s failed after %d attempts: %w", method, path, c.opt.MaxAttempts, lastErr)
}

// attempt performs a single HTTP exchange under the per-attempt deadline,
// classifying the outcome: retryable covers connection errors, truncated
// bodies, 429 and all 5xx.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, sp *obs.Span) (status int, respBody []byte, retryable bool, err error) {
	actx := ctx
	if c.opt.RequestTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.opt.RequestTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, false, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("User-Agent", "ist-client/1")
	if sctx := sp.Context(); sctx.Valid() {
		req.Header.Set(obs.TraceparentHeader, sctx.Traceparent())
	}
	resp, err := c.http.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return 0, nil, false, ctx.Err() // caller gave up; not ours to retry
		}
		return 0, nil, true, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	respBody, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		if ctx.Err() != nil {
			return 0, nil, false, ctx.Err()
		}
		// A body cut mid-flight (proxy died, connection reset): the
		// response cannot be trusted, so treat the whole attempt as lost.
		return 0, nil, true, fmt.Errorf("client: truncated response: %w", rerr)
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		return resp.StatusCode, respBody, true, &transientStatusError{
			status:     resp.StatusCode,
			body:       string(respBody),
			retryAfter: parseRetryAfter(resp.Header),
		}
	}
	return resp.StatusCode, respBody, false, nil
}

// transientStatusError carries a retryable HTTP status between attempts,
// with the server's Retry-After hint if it sent one.
type transientStatusError struct {
	status     int
	body       string
	retryAfter time.Duration
}

func (e *transientStatusError) Error() string {
	return fmt.Sprintf("client: transient status %d: %s", e.status, strings.TrimSpace(e.body))
}

// retryAfterOf extracts a Retry-After hint from a transient error.
func retryAfterOf(err error) (time.Duration, bool) {
	var te *transientStatusError
	if errors.As(err, &te) && te.retryAfter > 0 {
		return te.retryAfter, true
	}
	return 0, false
}

// retryReason buckets an attempt failure for the retry counter.
func retryReason(err error) string {
	var te *transientStatusError
	if errors.As(err, &te) {
		return "status_" + strconv.Itoa(te.status)
	}
	if strings.Contains(err.Error(), "truncated") {
		return "truncated"
	}
	return "network"
}

// parseRetryAfter reads an integer-seconds Retry-After header (the only
// form the server emits; HTTP-date would need a wall-clock read).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoff computes the delay before retry number n (0-based): capped
// exponential with jitter drawn from the injected RNG on the upper half of
// the window, so synchronized clients decorrelate without ever retrying
// faster than half the nominal schedule.
func (c *Client) backoff(n int) time.Duration {
	d := c.opt.BaseBackoff
	for i := 0; i < n && d < c.opt.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.opt.MaxBackoff {
		d = c.opt.MaxBackoff
	}
	c.rngMu.Lock()
	j := c.rng.Float64()
	c.rngMu.Unlock()
	return d/2 + time.Duration(j*float64(d/2))
}

// timerSleep is the production Sleep: a timer that honors cancellation.
func timerSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Client) countRequest(outcome string) {
	if c.requests != nil {
		c.requests.With(outcome).Inc()
	}
}

func (c *Client) countRetry(reason string) {
	if c.retries != nil {
		c.retries.With(reason).Inc()
	}
}
