package client

import (
	"sync"
	"time"

	"ist/internal/clock"
)

// breaker is a consecutive-failure circuit breaker. Closed: requests flow,
// each failure increments a streak, each success clears it. When the streak
// reaches the threshold the circuit opens for a cooldown window (measured on
// the injected clock): requests fail fast with ErrBreakerOpen instead of
// burning a full retry schedule against a dead server. After the window one
// probe is admitted (half-open); its success closes the circuit, its failure
// re-opens for another window.
type breaker struct {
	threshold int
	cooldown  time.Duration
	clk       clock.Clock
	onTrip    func() // metric hook; nil ok

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
}

// newBreaker builds a breaker; threshold < 0 disables it (allow always).
func newBreaker(threshold int, cooldown time.Duration, clk clock.Clock) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, clk: clk}
}

// allow gates one attempt: nil to proceed, ErrBreakerOpen to fail fast.
func (b *breaker) allow() error {
	if b.threshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return nil // closed
	}
	if b.clk.Now().Before(b.openUntil) {
		return ErrBreakerOpen
	}
	if b.probing {
		return ErrBreakerOpen // one half-open probe at a time
	}
	b.probing = true
	return nil
}

// success reports a completed exchange, closing the circuit.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure reports a failed attempt; crossing the threshold (or failing the
// half-open probe) opens the circuit for a fresh cooldown window.
func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = b.clk.Now().Add(b.cooldown)
		if b.onTrip != nil {
			b.onTrip()
		}
	}
	b.mu.Unlock()
}
