package ist

import (
	"math/rand"
	"strings"
	"testing"
)

// TestIntegrationMatrix runs every algorithm against every dataset family
// at a few k values and asserts top-k correctness of every answer — the
// end-to-end compatibility net across the whole public surface.
func TestIntegrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is not short")
	}
	type dsCase struct {
		name string
		d    int
	}
	datasets := []dsCase{
		{"anti", 3}, {"corr", 3}, {"indep", 4},
		{"island", 2}, {"weather", 4}, {"car", 4}, {"nba", 6},
	}
	for _, dc := range datasets {
		dc := dc
		t.Run(dc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			ds, err := DatasetByName(dc.name, rng, 500, dc.d)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 5, 20} {
				band := Preprocess(ds.Points, k)
				u := RandomUtility(rng, ds.Dim())
				eps := EpsilonForTopK(band, u, k)
				algs := []Algorithm{
					NewRH(1), NewHDPI(1), NewHDPIAccurate(1), NewRobustHDPI(1),
					NewUHRandom(eps, 1), NewUHSimplex(eps, 1),
					NewUHRandomAdapt(1), NewUHSimplexAdapt(1),
					NewSortingRandom(4, eps, 1), NewSortingSimplex(4, eps, 1),
				}
				if ds.Dim() == 2 {
					algs = append(algs, NewTwoDPI(), NewMedianAdapt(), NewHullAdapt())
				}
				for _, alg := range algs {
					res := Solve(alg, band, k, NewUser(u))
					// The sampling, robust and ε-based algorithms have
					// probabilistic guarantees; everything must at least
					// return a valid index, and the exact algorithms must
					// return a top-k point.
					if res.Index < 0 || res.Index >= len(band) {
						t.Fatalf("%s/%s k=%d: invalid index", dc.name, alg.Name(), k)
					}
					exact := !strings.Contains(alg.Name(), "sampling") &&
						!strings.Contains(alg.Name(), "Robust")
					if exact && !IsTopK(band, u, k, res.Point) {
						t.Errorf("%s/%s k=%d: returned non-top-%d point after %d questions",
							dc.name, alg.Name(), k, k, res.Questions)
					}
				}
			}
		})
	}
}

// TestTranscriptReplayThroughSolve records a full solve and replays it
// byte-identically: same questions, same answer sequence, same result.
func TestTranscriptReplayThroughSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := CarLike(rng, 300)
	k := 10
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 4)

	rec := NewRecordingOracle(NewUser(hidden))
	first := Solve(NewRH(77), band, k, rec)

	// Serialize and reload the transcript, then replay against a fresh
	// instance of the same algorithm/seed.
	var buf strings.Builder
	if err := rec.Transcript().Save(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := LoadTranscript(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReplayOracle(tr)
	second := Solve(NewRH(77), band, k, rep)
	if rep.Err() != nil {
		t.Fatalf("replay diverged: %v", rep.Err())
	}
	if first.Index != second.Index || first.Questions != second.Questions {
		t.Fatalf("replay result (%d, %dq) != original (%d, %dq)",
			second.Index, second.Questions, first.Index, first.Questions)
	}
}

// TestDeterminismAcrossRuns guards the fixed-seed reproducibility that the
// replay feature and the recorded experiments rely on.
func TestDeterminismAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := AntiCorrelated(rng, 400, 4)
	k := 8
	band := Preprocess(ds.Points, k)
	u := RandomUtility(rng, 4)
	for _, mk := range []func() Algorithm{
		func() Algorithm { return NewRH(123) },
		func() Algorithm { return NewHDPI(123) },
	} {
		a := Solve(mk(), band, k, NewUser(u))
		b := Solve(mk(), band, k, NewUser(u))
		if a.Index != b.Index || a.Questions != b.Questions {
			t.Fatalf("%s not deterministic: (%d,%d) vs (%d,%d)",
				mk().Name(), a.Index, a.Questions, b.Index, b.Questions)
		}
	}
}

// TestQuestionsScaleWithLogN spot-checks Table 1's expected-case behaviour
// end-to-end: quadrupling n should add roughly 2·d questions for RH, not
// multiply them.
func TestQuestionsScaleWithLogN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := 10
	avg := func(n int) float64 {
		ds := AntiCorrelated(rand.New(rand.NewSource(3)), n, 3)
		band := Preprocess(ds.Points, k)
		total := 0
		const trials = 6
		for i := 0; i < trials; i++ {
			u := RandomUtility(rng, 3)
			user := NewUser(u)
			Solve(NewRH(int64(i)), band, k, user)
			total += user.Questions()
		}
		return float64(total) / trials
	}
	small, big := avg(500), avg(4000)
	if big > small*3+6 {
		t.Fatalf("questions grew super-logarithmically: n=500 -> %.1f, n=4000 -> %.1f", small, big)
	}
}
