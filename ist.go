// Package ist is a Go implementation of "Interactive Search for One of the
// Top-k" (Wang, Wong, Xie — SIGMOD 2021).
//
// Given a dataset of tuples with d numeric attributes (normalized to (0,1],
// larger preferred) and a user whose preference is an unknown linear utility
// function, the IST problem asks the user as few pairwise "which do you
// prefer?" questions as possible until a tuple guaranteed to be among the
// user's top-k can be returned.
//
// The package exposes the paper's three algorithms —
//
//   - TwoDPI: asymptotically optimal in 2 dimensions (Section 4),
//   - HDPI: the partition-based d-dimensional algorithm that asks the
//     fewest questions in practice (Section 5.2),
//   - RH: the hyperplane-walking d-dimensional algorithm with an expected
//     O(d log n) question bound, fastest in wall-clock time (Section 5.3),
//
// plus the adapted competitor algorithms of the paper's evaluation, dataset
// generators, skyline/k-skyband preprocessing, and simulated users (exact
// and noisy). See the examples/ directory for runnable walkthroughs and
// EXPERIMENTS.md for the reproduction of every figure in the paper.
//
// Quick start:
//
//	points := ist.AntiCorrelated(rng, 1000, 4).Points
//	band := ist.Preprocess(points, 10)            // 10-skyband
//	user := ist.NewUser(hiddenUtility)            // or a real io-based oracle
//	res := ist.Solve(ist.NewRH(42), band, 10, user)
//	fmt.Println(res.Point, res.Questions)
package ist

import (
	"io"
	"math/rand"
	"time"

	"ist/internal/baseline"
	"ist/internal/clock"
	"ist/internal/core"
	"ist/internal/dataset"
	"ist/internal/geom"
	"ist/internal/obs"
	"ist/internal/oracle"
	"ist/internal/parallel"
	"ist/internal/polytope"
	"ist/internal/prep"
	"ist/internal/skyband"
)

// Point is a tuple as a vector of attribute values in (0,1], larger
// preferred in every dimension.
type Point = geom.Vector

// Oracle answers pairwise preference questions; it is how algorithms talk
// to the (real or simulated) user.
type Oracle = oracle.Oracle

// Algorithm is an interactive IST solver returning the index of a point
// among the user's top-k.
type Algorithm = core.Algorithm

// MultiAlgorithm returns several of the user's top-k points (the AllTopK /
// SomeTopK variants of Section 6.5).
type MultiAlgorithm = core.MultiAlgorithm

// Dataset is a named point collection.
type Dataset = dataset.Dataset

// User is a truthful simulated user with a hidden utility vector.
type User = oracle.User

// NoisyUser is a simulated user who errs with some probability per question.
type NoisyUser = oracle.NoisyUser

// NewUser returns a truthful simulated user.
func NewUser(utility Point) *User { return oracle.NewUser(utility) }

// NewNoisyUser returns a simulated user who flips each answer independently
// with probability errRate.
func NewNoisyUser(utility Point, errRate float64, rng *rand.Rand) *NoisyUser {
	return oracle.NewNoisyUser(utility, errRate, rng)
}

// RandomUtility draws a utility vector uniformly from the standard simplex.
func RandomUtility(rng *rand.Rand, d int) Point { return oracle.RandomUtility(rng, d) }

// Preprocess reduces points to their k-skyband — the set of all possible
// top-k points for any linear utility — exactly as the paper's experiments
// preprocess every dataset (Section 6).
func Preprocess(points []Point, k int) []Point {
	return skyband.Filter(points, skyband.KSkyband(points, k))
}

// TopK returns the indices of the k highest-utility points w.r.t. u.
func TopK(points []Point, u Point, k int) []int { return oracle.TopK(points, u, k) }

// IsTopK reports whether p is among the k highest-utility points.
func IsTopK(points []Point, u Point, k int, p Point) bool {
	return oracle.IsTopK(points, u, k, p)
}

// Accuracy is the paper's result-quality measure f(p)/f(p_k), capped at 1.
func Accuracy(points []Point, u Point, k int, p Point) float64 {
	return oracle.Accuracy(points, u, k, p)
}

// TheoryBounds returns the paper's 2-d question-count bounds for an (n, k)
// instance: the Ω(log₂(n/k)) lower bound of Theorem 3.2 and the
// O(log₂⌈2n/(k+1)⌉) upper bound 2D-PI achieves (Theorem 4.5). The server
// compares every certified session against them (DESIGN.md §13).
func TheoryBounds(n, k int) (lower, upper float64) { return core.TheoryBounds(n, k) }

// Budget bounds an interactive run: a maximum number of questions, a
// deadline (checked against Clock, default the wall clock), and an optional
// context whose cancellation stops the run. The zero Budget is inactive and
// leaves the algorithm's behaviour — including its random choices —
// bit-identical to an unbudgeted run.
type Budget = core.Budget

// Certificate reports how a budgeted run ended and how much of the answer
// quality survives: whether the result is guaranteed top-k (Certified), the
// stop reason, questions spent, how many points were still candidates, the
// credible weight fraction (RobustHDPI only), and any degradation-ladder
// steps taken along the way.
type Certificate = core.Certificate

// StopReason labels why a budgeted run stopped; see the Stop* constants.
type StopReason = core.StopReason

// Stop reasons reported in a Certificate.
const (
	StopConverged  = core.StopConverged
	StopQuestions  = core.StopQuestions
	StopDeadline   = core.StopDeadline
	StopCanceled   = core.StopCanceled
	StopDegenerate = core.StopDegenerate
	StopPanic      = core.StopPanic
)

// Clock is the injectable time source for deadline budgets.
type Clock = clock.Clock

// Observer receives structured trace events from an instrumented run:
// questions asked and answered, halfspace cuts, candidate prunes, LP solves,
// convex-point tests, stop-condition checks and degradation steps. Attaching
// an observer never changes an algorithm's behaviour — events carry only
// already-computed state — and a nil observer is the zero-cost fast path.
type Observer = obs.Observer

// TraceEvent is one structured trace event.
type TraceEvent = obs.Event

// TraceEventKind labels a TraceEvent.
type TraceEventKind = obs.EventKind

// Observe attaches a trace observer to an algorithm built by this package
// (TwoDPI, HD-PI and variants, RH and variants). It reports false when the
// algorithm does not support tracing (the adapted baselines). Passing a nil
// observer detaches.
func Observe(alg any, o Observer) bool {
	oa, ok := alg.(core.Observable)
	if ok {
		oa.SetObserver(o)
	}
	return ok
}

// SetParallelism sets the preprocessing worker-pool degree on an algorithm
// built by this package. workers <= 0 resolves to GOMAXPROCS; 1 is the
// serial legacy path. Any degree produces bit-identical answers, transcripts
// and trace streams — parallelism only changes wall-clock time (DESIGN.md
// §14). It reports false for algorithms with no parallelizable stage (2D-PI
// and RH compute no convex points; the adapted baselines other than UH are
// untouched).
func SetParallelism(alg any, workers int) bool {
	pa, ok := alg.(core.Parallelizable)
	if ok {
		pa.SetParallelism(parallel.Degree(workers))
	}
	return ok
}

// PreprocessCache memoizes dataset-level preprocessing — k-skybands, exact
// convex-point sets, 2-d sweep partitions — across sessions over the same
// dataset, keyed by Fingerprint. Safe for concurrent use; computations are
// single-flighted. Each memoized entry stores the trace-event tape of its
// first computation and replays it on every hit, so cached and cold runs
// emit identical event streams.
type PreprocessCache = prep.Cache

// PreprocessCacheStats is a snapshot of cache effectiveness counters.
type PreprocessCacheStats = prep.Stats

// NewPreprocessCache returns a PreprocessCache holding at most maxBytes of
// memoized values (approximate; least-recently-used entries are evicted).
// maxBytes <= 0 means unbounded.
func NewPreprocessCache(maxBytes int64) *PreprocessCache { return prep.New(maxBytes) }

// UsePreprocessCache attaches a shared preprocessing cache to an algorithm
// built by this package, keying its entries by the fingerprint of (points,
// k) — the dataset the algorithm will run on. It reports false when the
// algorithm has no cacheable preprocessing stage. A nil cache detaches.
func UsePreprocessCache(alg any, c *PreprocessCache, points []Point, k int) bool {
	pc, ok := alg.(core.PrepCached)
	if ok {
		if c == nil {
			pc.SetPrepCache(nil, 0)
		} else {
			pc.SetPrepCache(c, Fingerprint(points, k))
		}
	}
	return ok
}

// PreprocessCached is Preprocess with the k-skyband memoized in c: the
// index set is cached under the dataset fingerprint, and the point copies
// are rebuilt per call so callers own their slice. A nil cache computes
// directly.
func PreprocessCached(c *PreprocessCache, points []Point, k int) []Point {
	if c == nil {
		return Preprocess(points, k)
	}
	key := prep.Key{Fingerprint: Fingerprint(points, k), Kind: "skyband", Param: k}
	v, err := c.Do(key, nil, func(obs.Observer) (any, int64, error) {
		band := skyband.KSkyband(points, k)
		return band, int64(len(band))*8 + 24, nil
	})
	if err != nil {
		return Preprocess(points, k)
	}
	return skyband.Filter(points, v.([]int))
}

// TraceWriter streams trace events as JSON Lines, one event per line with a
// sequence number and seconds-since-first-event timestamp.
type TraceWriter = obs.JSONL

// NewTraceWriter returns a TraceWriter over w (commonly a file or stderr),
// timestamping events on the real clock. Close flushes nothing (every event
// is written eagerly) but closes w when it is an io.Closer.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return obs.NewJSONL(w, clock.Real)
}

// Result is the outcome of a Solve call.
type Result struct {
	// Index is the returned point's index into the input slice.
	Index int
	// Point is the returned point.
	Point Point
	// Questions is how many questions the user answered.
	Questions int
	// Duration is the algorithm's processing time (excluding nothing: the
	// simulated oracle answers in ~0, so this matches the paper's
	// "execution time").
	Duration time.Duration
	// Certificate describes how a budgeted run ended; nil for plain Solve.
	Certificate *Certificate
}

// Solve runs an algorithm against the oracle and packages the outcome.
func Solve(alg Algorithm, points []Point, k int, o Oracle) Result {
	before := o.Questions()
	start := clock.Real.Now()
	idx := alg.Run(points, k, o)
	return Result{
		Index:     idx,
		Point:     points[idx].Clone(),
		Questions: o.Questions() - before,
		Duration:  clock.Real.Now().Sub(start),
	}
}

// SolveBudgeted is Solve under an anytime budget: the run stops cleanly when
// the budget is exhausted (questions, deadline, or context cancellation) and
// the Result carries a Certificate stating whether the returned point is
// still guaranteed top-k or only best-effort. Algorithms that do not
// implement budget checks run to completion and certify their own result.
func SolveBudgeted(alg Algorithm, points []Point, k int, o Oracle, b Budget) Result {
	before := o.Questions()
	start := clock.Real.Now()
	idx, cert := core.RunBudgeted(alg, points, k, o, b)
	return Result{
		Index:       idx,
		Point:       points[idx].Clone(),
		Questions:   o.Questions() - before,
		Duration:    clock.Real.Now().Sub(start),
		Certificate: &cert,
	}
}

// NewTwoDPI returns the asymptotically optimal 2-dimensional algorithm.
func NewTwoDPI() Algorithm { return &core.TwoDPI{} }

// NewHDPI returns HD-PI in sampling mode (the paper's practical default)
// with the given seed.
func NewHDPI(seed int64) Algorithm {
	return core.NewHDPI(core.HDPIOptions{
		Mode: core.ConvexSampling,
		Rng:  rand.New(rand.NewSource(seed)),
	})
}

// NewHDPIAccurate returns HD-PI with exact convex-point detection.
func NewHDPIAccurate(seed int64) Algorithm {
	return core.NewHDPI(core.HDPIOptions{
		Mode: core.ConvexExact,
		Rng:  rand.New(rand.NewSource(seed)),
	})
}

// NewRH returns the RH algorithm with the given seed.
func NewRH(seed int64) Algorithm { return core.NewRHDefault(seed) }

// NewRHMulti returns the multi-answer RH variant (Section 6.5).
func NewRHMulti(seed int64) MultiAlgorithm {
	return core.NewRHMulti(core.RHOptions{Rng: rand.New(rand.NewSource(seed)), UseBall: true})
}

// NewHDPIMulti returns the multi-answer HD-PI variant (Section 6.5).
func NewHDPIMulti(seed int64) MultiAlgorithm {
	return core.NewHDPIMulti(core.HDPIOptions{
		Mode: core.ConvexSampling,
		Rng:  rand.New(rand.NewSource(seed)),
	})
}

// Baseline constructors (the adapted competitors of Section 6).

// NewMedian returns the 2-d Median baseline of [36].
func NewMedian() Algorithm { return baseline.Median{} }

// NewHull returns the 2-d Hull baseline of [36].
func NewHull() Algorithm { return baseline.Hull{} }

// NewMedianAdapt returns Median with the paper's top-k adaptation.
func NewMedianAdapt() Algorithm { return baseline.MedianAdapt{} }

// NewHullAdapt returns Hull with the paper's top-k adaptation.
func NewHullAdapt() Algorithm { return baseline.HullAdapt{} }

// NewUHRandom returns UH-Random [36] with regret threshold eps.
func NewUHRandom(eps float64, seed int64) Algorithm {
	return &baseline.UH{Eps: eps, Rng: rand.New(rand.NewSource(seed))}
}

// NewUHSimplex returns UH-Simplex [36] with regret threshold eps.
func NewUHSimplex(eps float64, seed int64) Algorithm {
	return &baseline.UH{Simplex: true, Eps: eps, Rng: rand.New(rand.NewSource(seed))}
}

// NewUHRandomAdapt returns the adapted UH-Random.
func NewUHRandomAdapt(seed int64) Algorithm {
	return &baseline.UH{Adapt: true, Rng: rand.New(rand.NewSource(seed))}
}

// NewUHSimplexAdapt returns the adapted UH-Simplex.
func NewUHSimplexAdapt(seed int64) Algorithm {
	return &baseline.UH{Simplex: true, Adapt: true, Rng: rand.New(rand.NewSource(seed))}
}

// NewUtilityApprox returns UtilityApprox [22] with regret threshold eps.
func NewUtilityApprox(eps float64) Algorithm { return &baseline.UtilityApprox{Eps: eps} }

// NewPreferenceLearning returns Preference-Learning [27].
func NewPreferenceLearning(seed int64) Algorithm {
	return &baseline.PreferenceLearning{Rng: rand.New(rand.NewSource(seed))}
}

// NewActiveRanking returns Active-Ranking [14].
func NewActiveRanking(seed int64) Algorithm {
	return &baseline.ActiveRanking{Rng: rand.New(rand.NewSource(seed))}
}

// EpsilonForTopK computes the paper's adapted regret threshold
// ε = 1 − f(p_k)/f(p₁) from the hidden utility vector. It is how the
// experiments configure UtilityApprox / UH-Random / UH-Simplex so that
// their regret-based stopping implies a top-k answer (Section 6).
func EpsilonForTopK(points []Point, u Point, k int) float64 {
	if len(points) == 0 {
		return 0
	}
	f1 := u.Dot(points[oracle.TopK(points, u, 1)[0]])
	if f1 <= 0 {
		return 0
	}
	return 1 - oracle.KthUtility(points, u, k)/f1
}

// Dataset generators (Section 6 workloads; see DESIGN.md for the real
// dataset stand-ins).

// AntiCorrelated generates the paper's default synthetic workload.
func AntiCorrelated(rng *rand.Rand, n, d int) *Dataset { return dataset.AntiCorrelated(rng, n, d) }

// Correlated generates positively correlated points.
func Correlated(rng *rand.Rand, n, d int) *Dataset { return dataset.Correlated(rng, n, d) }

// Independent generates uniform points.
func Independent(rng *rand.Rand, n, d int) *Dataset { return dataset.Independent(rng, n, d) }

// IslandLike generates the 2-d Island stand-in.
func IslandLike(rng *rand.Rand, n int) *Dataset { return dataset.IslandLike(rng, n) }

// WeatherLike generates the 4-d Weather stand-in.
func WeatherLike(rng *rand.Rand, n int) *Dataset { return dataset.WeatherLike(rng, n) }

// CarLike generates the 4-d used-car stand-in.
func CarLike(rng *rand.Rand, n int) *Dataset { return dataset.CarLike(rng, n) }

// NBALike generates the 6-d NBA stand-in.
func NBALike(rng *rand.Rand, n int) *Dataset { return dataset.NBALike(rng, n) }

// DatasetByName builds a dataset by its experiment name
// (anti|corr|indep|island|weather|car|nba).
func DatasetByName(name string, rng *rand.Rand, n, d int) (*Dataset, error) {
	return dataset.ByName(name, rng, n, d)
}

// BoundStats re-exports the bounding-strategy effectiveness counters used by
// the Figure 5 reproduction.
type BoundStats = polytope.BoundStats
