package ist_test

import (
	"fmt"
	"math/rand"
	"strings"

	"ist"
)

// The basic flow: preprocess, pick an algorithm, interact, get a guaranteed
// top-k tuple.
func ExampleSolve() {
	rng := rand.New(rand.NewSource(42))
	ds := ist.AntiCorrelated(rng, 2000, 4)
	k := 10
	band := ist.Preprocess(ds.Points, k)

	hidden := ist.Point{0.3, 0.2, 0.4, 0.1} // the user's (unknown) preference
	user := ist.NewUser(hidden)

	res := ist.Solve(ist.NewHDPI(1), band, k, user)
	fmt.Println("top-k:", ist.IsTopK(band, hidden, k, res.Point))
	// Output:
	// top-k: true
}

// Session inverts control for service integration: pull questions, push
// answers.
func ExampleSession() {
	rng := rand.New(rand.NewSource(7))
	ds := ist.CarLike(rng, 500)
	k := 10
	band := ist.Preprocess(ds.Points, k)
	hidden := ist.RandomUtility(rng, 4)

	s := ist.NewSession(ist.NewRH(7), band, k)
	defer s.Close()
	for {
		p, q, done := s.Next()
		if done {
			break
		}
		// In a real system this is where the question goes out to a human.
		s.Answer(hidden.Dot(p) >= hidden.Dot(q))
	}
	pt, _, _ := s.Result()
	fmt.Println("found a guaranteed top-k car:", ist.IsTopK(band, hidden, k, pt))
	// Output:
	// found a guaranteed top-k car: true
}

// Preprocessing keeps only tuples that can possibly be in anyone's top-k.
func ExamplePreprocess() {
	pts := []ist.Point{
		{0.9, 0.1},
		{0.5, 0.5},
		{0.1, 0.9},
		{0.2, 0.2}, // dominated by (0.5, 0.5): cannot be anyone's top-1
	}
	band := ist.Preprocess(pts, 1)
	fmt.Println(len(band))
	// Output:
	// 3
}

// Loading real data: CSV in, normalize with per-attribute orientation.
func ExampleReadCSV() {
	csv := `price,power
	20000,150
	10000,120
	30000,220`
	ds, _ := ist.ReadCSV(readerOf(csv), "cars")
	norm, _ := ist.NormalizeDataset(ds, []ist.Orientation{ist.SmallerBetter, ist.LargerBetter})
	fmt.Println(norm.Size(), norm.Dim())
	// Output:
	// 3 2
}

func readerOf(s string) *strings.Reader { return strings.NewReader(s) }
