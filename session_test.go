package ist

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"ist/internal/faultinject"
)

func TestSessionDrivesToCompletion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := AntiCorrelated(rng, 400, 3)
	k := 5
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 3)

	s := NewSession(NewRH(9), band, k)
	defer s.Close()
	questions := 0
	for {
		p, q, done := s.Next()
		if done {
			break
		}
		if err := s.Answer(hidden.Dot(p) >= hidden.Dot(q)); err != nil {
			t.Fatal(err)
		}
		questions++
		if questions > 10000 {
			t.Fatal("session never finished")
		}
	}
	pt, idx, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx >= len(band) || !pt.Equal(band[idx]) {
		t.Fatalf("bad result %v / %d", pt, idx)
	}
	if !IsTopK(band, hidden, k, pt) {
		t.Fatal("session result not top-k")
	}
	if s.Questions() != questions {
		t.Fatalf("Questions = %d, want %d", s.Questions(), questions)
	}
}

func TestSessionMatchesDirectRun(t *testing.T) {
	// Driving via Session must produce the same answer and question count
	// as a direct Solve with the same seed and the same user.
	rng := rand.New(rand.NewSource(2))
	ds := AntiCorrelated(rng, 300, 3)
	k := 4
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 3)

	direct := Solve(NewRH(33), band, k, NewUser(hidden))

	s := NewSession(NewRH(33), band, k)
	defer s.Close()
	for {
		p, q, done := s.Next()
		if done {
			break
		}
		s.Answer(hidden.Dot(p) >= hidden.Dot(q))
	}
	_, idx, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if idx != direct.Index || s.Questions() != direct.Questions {
		t.Fatalf("session (%d, %dq) != direct (%d, %dq)",
			idx, s.Questions(), direct.Index, direct.Questions)
	}
}

func TestSessionNextIdempotentWhilePending(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := AntiCorrelated(rng, 200, 3)
	band := Preprocess(ds.Points, 3)
	s := NewSession(NewRH(1), band, 3)
	defer s.Close()
	p1, q1, done := s.Next()
	if done {
		t.Skip("algorithm finished without questions")
	}
	p2, q2, done2 := s.Next()
	if done2 || !p1.Equal(p2) || !q1.Equal(q2) {
		t.Fatal("Next must repeat the pending question until answered")
	}
}

func TestSessionAnswerWithoutQuestion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := AntiCorrelated(rng, 100, 2)
	band := Preprocess(ds.Points, 2)
	s := NewSession(NewRH(1), band, 2)
	defer s.Close()
	if err := s.Answer(true); err != ErrNoPendingQuestion {
		t.Fatalf("Answer before Next: err = %v, want ErrNoPendingQuestion", err)
	}
}

func TestSessionResultBeforeDone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := AntiCorrelated(rng, 200, 3)
	band := Preprocess(ds.Points, 3)
	s := NewSession(NewRH(1), band, 3)
	defer s.Close()
	if _, _, done := s.Next(); done {
		t.Skip("no interaction needed")
	}
	if _, _, err := s.Result(); err == nil {
		t.Fatal("Result before done must error")
	}
}

func TestSessionCloseReleasesGoroutine(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := AntiCorrelated(rng, 500, 4)
	band := Preprocess(ds.Points, 5)

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		s := NewSession(NewRH(int64(i)), band, 5)
		s.Next() // force at least the setup
		s.Close()
	}
	// Give the aborted goroutines a moment to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestSessionPanicBeforeFirstQuestion(t *testing.T) {
	// The algorithm dies in setup, before any question exists. The old
	// behaviour re-panicked on the session goroutine and took the process
	// down; now the session enters a terminal error state and every call
	// returns instead of blocking.
	rng := rand.New(rand.NewSource(8))
	ds := AntiCorrelated(rng, 200, 3)
	band := Preprocess(ds.Points, 3)
	alg := &faultinject.Algorithm{Inner: NewRH(1), Plan: faultinject.Plan{PanicAt: 1}}
	s := NewSession(alg, band, 3)
	defer s.Close()
	if _, _, done := s.Next(); !done {
		t.Fatal("Next on a failed session must report done")
	}
	if s.Err() == nil {
		t.Fatal("Err must report the panic")
	}
	if err := s.Answer(true); err == nil {
		t.Fatal("Answer on a failed session must error, not block")
	}
	if _, _, err := s.Result(); err == nil {
		t.Fatal("Result on a failed session must return the error")
	}
}

func TestSessionPanicMidInteraction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := AntiCorrelated(rng, 400, 3)
	k := 5
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 3)
	alg := &faultinject.Algorithm{Inner: NewRH(3), Plan: faultinject.Plan{PanicAt: 2}}
	s := NewSession(alg, band, k)
	defer s.Close()
	for i := 0; i < 100; i++ {
		p, q, done := s.Next()
		if done {
			if s.Err() == nil {
				t.Fatal("session finished without surfacing the scheduled panic")
			}
			if s.Questions() != 1 {
				t.Fatalf("answered %d questions before the question-2 panic, want 1", s.Questions())
			}
			return
		}
		if err := s.Answer(hidden.Dot(p) >= hidden.Dot(q)); err != nil {
			// The panic can also surface here, racing the next question.
			if s.Err() == nil {
				t.Fatalf("Answer failed without a session error: %v", err)
			}
			return
		}
	}
	t.Fatal("scheduled panic never surfaced")
}

func TestSessionCloseRacesAnswer(t *testing.T) {
	// A Close (e.g. from an expiry reaper) racing an in-flight Answer must
	// never deadlock: Answer returns nil or ErrSessionClosed promptly.
	rng := rand.New(rand.NewSource(10))
	ds := AntiCorrelated(rng, 300, 3)
	k := 4
	band := Preprocess(ds.Points, k)
	for i := 0; i < 30; i++ {
		s := NewSession(NewRH(int64(i)), band, k)
		_, _, done := s.Next()
		if done {
			s.Close()
			continue
		}
		raced := make(chan error, 1)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			raced <- s.Answer(true)
		}()
		go func() {
			defer wg.Done()
			s.Close()
		}()
		finished := make(chan struct{})
		go func() { wg.Wait(); close(finished) }()
		select {
		case <-finished:
		case <-time.After(10 * time.Second):
			t.Fatal("Close racing Answer deadlocked")
		}
		if err := <-raced; err != nil && !errors.Is(err, ErrSessionClosed) {
			t.Fatalf("racing Answer returned unexpected error: %v", err)
		}
	}
}

func TestResumeSessionReplaysToSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := CarLike(rng, 400)
	k := 10
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 4)

	// Run a session partway, "crash", and resume from the answer log.
	s := NewSession(NewRH(21), band, k)
	answered := 0
	for answered < 4 {
		p, q, done := s.Next()
		if done {
			t.Skip("session too short to interrupt")
		}
		if err := s.Answer(hidden.Dot(p) >= hidden.Dot(q)); err != nil {
			t.Fatal(err)
		}
		answered++
	}
	log := s.AnswerLog()
	if len(log) != answered {
		t.Fatalf("AnswerLog has %d entries, want %d", len(log), answered)
	}
	s.Close() // the "crash": the original session is gone

	resumed, err := ResumeSession(NewRH(21), band, k, log)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if resumed.Questions() != answered {
		t.Fatalf("resumed session at %d questions, want %d", resumed.Questions(), answered)
	}
	for {
		p, q, done := resumed.Next()
		if done {
			break
		}
		if err := resumed.Answer(hidden.Dot(p) >= hidden.Dot(q)); err != nil {
			t.Fatal(err)
		}
	}
	_, idx, err := resumed.Result()
	if err != nil {
		t.Fatal(err)
	}
	direct := Solve(NewRH(21), band, k, NewUser(hidden))
	if idx != direct.Index || resumed.Questions() != direct.Questions {
		t.Fatalf("resumed (%d, %dq) != crash-free (%d, %dq)",
			idx, resumed.Questions(), direct.Index, direct.Questions)
	}
}

func TestResumeSessionDetectsDivergence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds := AntiCorrelated(rng, 300, 3)
	k := 4
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 3)
	// A full transcript plus surplus answers cannot replay cleanly: the
	// algorithm finishes with answers left over.
	direct := Solve(NewRH(5), band, k, NewUser(hidden))
	log := make([]bool, direct.Questions+3)
	u := NewUser(hidden)
	s := NewSession(NewRH(5), band, k)
	for i := 0; ; i++ {
		p, q, done := s.Next()
		if done {
			break
		}
		ans := u.Prefer(p, q)
		log[i] = ans
		s.Answer(ans)
	}
	s.Close()
	if _, err := ResumeSession(NewRH(5), band, k, log); err == nil {
		t.Fatal("replay with surplus answers must report divergence")
	}
}

func TestFingerprintDistinguishesDatasets(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := Preprocess(CarLike(rng, 300).Points, 10)
	b := Preprocess(NBALike(rng, 300).Points, 10)
	if Fingerprint(a, 10) == Fingerprint(b, 10) {
		t.Fatal("different datasets share a fingerprint")
	}
	if Fingerprint(a, 10) == Fingerprint(a, 11) {
		t.Fatal("different k shares a fingerprint")
	}
	if Fingerprint(a, 10) != Fingerprint(a, 10) {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestSessionWithHDPI(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := CarLike(rng, 400)
	k := 10
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 4)
	s := NewSession(NewHDPI(2), band, k)
	defer s.Close()
	for {
		p, q, done := s.Next()
		if done {
			break
		}
		s.Answer(hidden.Dot(p) >= hidden.Dot(q))
	}
	pt, _, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !IsTopK(band, hidden, k, pt) {
		t.Fatal("HD-PI session result not top-k")
	}
}

// TestSessionCloseRacingNextLeaksNoGoroutines is the leak regression for the
// worst-ordered shutdown: a caller parked in Next (waiting for the next
// question) while another goroutine Closes the session. Both the caller and
// the algorithm goroutine must unwind; 50 iterations make a per-iteration
// leak visible in the global goroutine count.
func TestSessionCloseRacingNextLeaksNoGoroutines(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := AntiCorrelated(rng, 300, 3)
	k := 4
	band := Preprocess(ds.Points, k)

	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		s := NewSession(NewRH(int64(i)), band, k)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Park on the question channel; the racing Close must wake it.
			s.Next()
		}()
		s.Close()
		wg.Wait()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestSessionBudgetMaxQuestions drives a budgeted session into exhaustion
// and checks the anytime contract surfaces through the session API: the
// session finishes (done, Result works) and the certificate admits the
// answer is best-effort.
func TestSessionBudgetMaxQuestions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := AntiCorrelated(rng, 600, 4)
	k := 3
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 4)

	s := NewSessionContext(context.Background(), NewRH(5), band, k, WithMaxQuestions(2))
	defer s.Close()
	if _, ok := s.Certificate(); ok {
		t.Fatal("certificate available before the session finished")
	}
	for {
		p, q, done := s.Next()
		if done {
			break
		}
		if err := s.Answer(hidden.Dot(p) >= hidden.Dot(q)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatalf("budgeted session errored: %v", err)
	}
	if _, _, err := s.Result(); err != nil {
		t.Fatalf("no best-effort result: %v", err)
	}
	if got := s.Questions(); got > 2 {
		t.Fatalf("session asked %d questions past a budget of 2", got)
	}
	cert, ok := s.Certificate()
	if !ok {
		t.Fatal("budgeted session has no certificate")
	}
	if cert.Certified {
		t.Fatal("2-question session claims a certified result")
	}
	if cert.Reason != StopQuestions {
		t.Fatalf("certificate reason %q, want %q", cert.Reason, StopQuestions)
	}
	if cert.Candidates <= k {
		t.Fatalf("certificate claims %d candidates after 2 answers, want > %d", cert.Candidates, k)
	}
}

// TestSessionContextCancel checks cancellation is a clean anytime stop, not
// an error: a session created under an already-canceled context finishes
// immediately with a best-effort result and a canceled certificate.
func TestSessionContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := AntiCorrelated(rng, 300, 3)
	k := 4
	band := Preprocess(ds.Points, k)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSessionContext(ctx, NewRH(8), band, k)
	defer s.Close()
	if _, _, done := s.Next(); !done {
		t.Fatal("canceled session still asks questions")
	}
	if err := s.Err(); err != nil {
		t.Fatalf("canceled session errored: %v", err)
	}
	if _, _, err := s.Result(); err != nil {
		t.Fatalf("no best-effort result: %v", err)
	}
	cert, ok := s.Certificate()
	if !ok {
		t.Fatal("canceled session has no certificate")
	}
	if cert.Certified || cert.Reason != StopCanceled {
		t.Fatalf("certificate = %+v, want uncertified canceled", cert)
	}
}

// TestSessionUnbudgetedHasNoCertificate pins the compatibility contract: a
// plain NewSession is not budgeted, reproduces the historical behaviour, and
// reports no certificate.
func TestSessionUnbudgetedHasNoCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds := AntiCorrelated(rng, 200, 3)
	k := 5
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 3)

	s := NewSession(NewRH(4), band, k)
	defer s.Close()
	for {
		p, q, done := s.Next()
		if done {
			break
		}
		s.Answer(hidden.Dot(p) >= hidden.Dot(q))
	}
	if _, _, err := s.Result(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Certificate(); ok {
		t.Fatal("unbudgeted session produced a certificate")
	}
}

// TestSessionBudgetedPanicIsAbsorbed checks the budgeted panic semantics: a
// poisoned oracle panic inside a budgeted session becomes a best-effort
// result with a panic-recovered certificate, not an error state.
func TestSessionBudgetedPanicIsAbsorbed(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ds := AntiCorrelated(rng, 300, 3)
	k := 4
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 3)

	alg := &faultinject.Algorithm{Inner: NewRH(6), Plan: faultinject.Plan{PanicAt: 2}}
	s := NewSessionContext(context.Background(), alg, band, k, WithMaxQuestions(64))
	defer s.Close()
	for {
		p, q, done := s.Next()
		if done {
			break
		}
		if err := s.Answer(hidden.Dot(p) >= hidden.Dot(q)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatalf("budgeted session entered the error state: %v", err)
	}
	if _, _, err := s.Result(); err != nil {
		t.Fatalf("no best-effort result after the panic: %v", err)
	}
	cert, ok := s.Certificate()
	if !ok {
		t.Fatal("no certificate after the recovered panic")
	}
	if cert.Certified || cert.Reason != StopPanic {
		t.Fatalf("certificate = %+v, want uncertified panic-recovered", cert)
	}
}
