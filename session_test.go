package ist

import (
	"math/rand"
	"runtime"
	"testing"
	"time"
)

func TestSessionDrivesToCompletion(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := AntiCorrelated(rng, 400, 3)
	k := 5
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 3)

	s := NewSession(NewRH(9), band, k)
	defer s.Close()
	questions := 0
	for {
		p, q, done := s.Next()
		if done {
			break
		}
		if err := s.Answer(hidden.Dot(p) >= hidden.Dot(q)); err != nil {
			t.Fatal(err)
		}
		questions++
		if questions > 10000 {
			t.Fatal("session never finished")
		}
	}
	pt, idx, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 || idx >= len(band) || !pt.Equal(band[idx]) {
		t.Fatalf("bad result %v / %d", pt, idx)
	}
	if !IsTopK(band, hidden, k, pt) {
		t.Fatal("session result not top-k")
	}
	if s.Questions() != questions {
		t.Fatalf("Questions = %d, want %d", s.Questions(), questions)
	}
}

func TestSessionMatchesDirectRun(t *testing.T) {
	// Driving via Session must produce the same answer and question count
	// as a direct Solve with the same seed and the same user.
	rng := rand.New(rand.NewSource(2))
	ds := AntiCorrelated(rng, 300, 3)
	k := 4
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 3)

	direct := Solve(NewRH(33), band, k, NewUser(hidden))

	s := NewSession(NewRH(33), band, k)
	defer s.Close()
	for {
		p, q, done := s.Next()
		if done {
			break
		}
		s.Answer(hidden.Dot(p) >= hidden.Dot(q))
	}
	_, idx, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if idx != direct.Index || s.Questions() != direct.Questions {
		t.Fatalf("session (%d, %dq) != direct (%d, %dq)",
			idx, s.Questions(), direct.Index, direct.Questions)
	}
}

func TestSessionNextIdempotentWhilePending(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := AntiCorrelated(rng, 200, 3)
	band := Preprocess(ds.Points, 3)
	s := NewSession(NewRH(1), band, 3)
	defer s.Close()
	p1, q1, done := s.Next()
	if done {
		t.Skip("algorithm finished without questions")
	}
	p2, q2, done2 := s.Next()
	if done2 || !p1.Equal(p2) || !q1.Equal(q2) {
		t.Fatal("Next must repeat the pending question until answered")
	}
}

func TestSessionAnswerWithoutQuestion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := AntiCorrelated(rng, 100, 2)
	band := Preprocess(ds.Points, 2)
	s := NewSession(NewRH(1), band, 2)
	defer s.Close()
	if err := s.Answer(true); err != ErrNoPendingQuestion {
		t.Fatalf("Answer before Next: err = %v, want ErrNoPendingQuestion", err)
	}
}

func TestSessionResultBeforeDone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := AntiCorrelated(rng, 200, 3)
	band := Preprocess(ds.Points, 3)
	s := NewSession(NewRH(1), band, 3)
	defer s.Close()
	if _, _, done := s.Next(); done {
		t.Skip("no interaction needed")
	}
	if _, _, err := s.Result(); err == nil {
		t.Fatal("Result before done must error")
	}
}

func TestSessionCloseReleasesGoroutine(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := AntiCorrelated(rng, 500, 4)
	band := Preprocess(ds.Points, 5)

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		s := NewSession(NewRH(int64(i)), band, 5)
		s.Next() // force at least the setup
		s.Close()
	}
	// Give the aborted goroutines a moment to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestSessionWithHDPI(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := CarLike(rng, 400)
	k := 10
	band := Preprocess(ds.Points, k)
	hidden := RandomUtility(rng, 4)
	s := NewSession(NewHDPI(2), band, k)
	defer s.Close()
	for {
		p, q, done := s.Next()
		if done {
			break
		}
		s.Answer(hidden.Dot(p) >= hidden.Dot(q))
	}
	pt, _, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !IsTopK(band, hidden, k, pt) {
		t.Fatal("HD-PI session result not top-k")
	}
}
