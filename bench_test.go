package ist

// Benchmark harness: one benchmark per table/figure of the paper (driving
// the same runners as cmd/istbench, at a reduced default scale so that
// `go test -bench=.` completes in minutes) plus ablation micro-benchmarks
// for the design choices listed in DESIGN.md §5.
//
// To regenerate a figure at paper scale use cmd/istbench, e.g.
//
//	go run ./cmd/istbench -exp fig9 -n 100000 -trials 10
//
// Each figure benchmark reports two custom metrics alongside ns/op:
// questions/user (the paper's primary cost) and, where applicable,
// accuracy.

import (
	"math/rand"
	"testing"

	"ist/internal/core"
	"ist/internal/experiments"
	"ist/internal/geom"
	"ist/internal/oracle"
	"ist/internal/polytope"
	"ist/internal/skyband"
	"ist/internal/sweep"
)

// benchCfg is the reduced scale used by the `go test -bench` harness.
func benchCfg() experiments.Config {
	return experiments.Config{N: 2000, D: 4, Ks: []int{1, 20, 60, 100}, Trials: 3, Seed: 1}
}

// runFigure executes an experiment runner b.N times and folds the average
// question count of our headline algorithm into the benchmark metrics.
func runFigure(b *testing.B, name string, cfg experiments.Config) {
	b.Helper()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = experiments.Run(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	if qs, ok := tab.Metrics["questions"]; ok && len(qs) > 0 && len(qs[0].Values) > 0 {
		last := qs[0].Values[len(qs[0].Values)-1]
		b.ReportMetric(last, "questions/user")
	}
	if accs, ok := tab.Metrics["accuracy"]; ok && len(accs) > 0 && len(accs[0].Values) > 0 {
		b.ReportMetric(accs[0].Values[len(accs[0].Values)-1], "accuracy")
	}
}

func BenchmarkTable1Bounds(b *testing.B)    { runFigure(b, "table1", benchCfg()) }
func BenchmarkFig5Bounding(b *testing.B)    { runFigure(b, "fig5", benchCfg()) }
func BenchmarkFig6Beta(b *testing.B)        { runFigure(b, "fig6", benchCfg()) }
func BenchmarkFig7Accuracy(b *testing.B)    { runFigure(b, "fig7", benchCfg()) }
func BenchmarkFig8TwoD(b *testing.B)        { runFigure(b, "fig8", benchCfg()) }
func BenchmarkFig9FourD(b *testing.B)       { runFigure(b, "fig9", benchCfg()) }
func BenchmarkFig10VaryN(b *testing.B)      { runFigure(b, "fig10", benchCfg()) }
func BenchmarkFig11VaryD(b *testing.B)      { runFigure(b, "fig11", benchCfg()) }
func BenchmarkFig12Weather(b *testing.B)    { runFigure(b, "fig12", benchCfg()) }
func BenchmarkFig13NBA(b *testing.B)        { runFigure(b, "fig13", benchCfg()) }
func BenchmarkFig14AllTopK(b *testing.B)    { runFigure(b, "fig14", smallerCfg()) }
func BenchmarkFig15AllTopKNBA(b *testing.B) { runFigure(b, "fig15", smallerCfg()) }
func BenchmarkFig16UserStudy(b *testing.B) {
	runFigure(b, "fig16", experiments.Config{Seed: 1, Trials: 3})
}
func BenchmarkFig17SomeTopK(b *testing.B) {
	runFigure(b, "fig17", experiments.Config{Seed: 1, Trials: 3})
}

// smallerCfg further reduces scale for the AllTopK figures, whose modified
// variants ask 4-10x more questions (that is their point).
func smallerCfg() experiments.Config {
	return experiments.Config{N: 600, D: 3, Ks: []int{5, 20}, Trials: 2, Seed: 1}
}

// --- Ablation and substrate micro-benchmarks (DESIGN.md §5) ---

// BenchmarkAlgorithms measures a single end-to-end solve per algorithm on a
// fixed preprocessed workload — the per-question processing cost that
// Figures 8-13 plot as "execution time".
func BenchmarkAlgorithms(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := AntiCorrelated(rng, 2000, 4)
	k := 20
	band := Preprocess(ds.Points, k)
	u := RandomUtility(rng, 4)
	eps := EpsilonForTopK(band, u, k)
	cases := []struct {
		name string
		mk   func(seed int64) Algorithm
	}{
		{"RH", func(s int64) Algorithm { return NewRH(s) }},
		{"HD-PI-sampling", func(s int64) Algorithm { return NewHDPI(s) }},
		{"UH-Random", func(s int64) Algorithm { return NewUHRandom(eps, s) }},
		{"UH-Simplex", func(s int64) Algorithm { return NewUHSimplex(eps, s) }},
		{"UtilityApprox", func(s int64) Algorithm { return NewUtilityApprox(eps) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			totalQ := 0
			for i := 0; i < b.N; i++ {
				user := NewUser(u)
				c.mk(int64(i)).Run(band, k, user)
				totalQ += user.Questions()
			}
			b.ReportMetric(float64(totalQ)/float64(b.N), "questions/user")
		})
	}
}

// BenchmarkPolytopeCutStrategies compares the bounding shortcuts on the
// classification-heavy inner loop of HD-PI (ablation #1/#4).
func BenchmarkPolytopeCutStrategies(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	d := 5
	// A polytope with a realistic number of cuts and probe hyperplanes.
	poly := polytope.NewSimplex(d)
	for c := 0; c < 6; c++ {
		n := geom.NewVector(d)
		for i := range n {
			n[i] = rng.Float64()*2 - 1
		}
		poly.Cut(geom.Hyperplane{Normal: n})
	}
	probes := make([]geom.Hyperplane, 200)
	for i := range probes {
		n := geom.NewVector(d)
		for j := range n {
			n[j] = rng.Float64()*2 - 1
		}
		probes[i] = geom.Hyperplane{Normal: n}
	}
	for _, s := range []polytope.Strategy{
		polytope.StrategyNone, polytope.StrategyBall,
		polytope.StrategyRect, polytope.StrategyRectFast,
	} {
		b.Run(s.String(), func(b *testing.B) {
			var stats polytope.BoundStats
			for i := 0; i < b.N; i++ {
				for _, h := range probes {
					poly.ClassifyWith(h, s, &stats)
				}
			}
			b.ReportMetric(stats.EffectiveRatio(), "effective-ratio")
		})
	}
}

// BenchmarkStopCheckFrequency ablates how often HD-PI runs the Lemma 5.5
// stopping check (ablation #5): rarely checking saves time per round but
// can waste questions.
func BenchmarkStopCheckFrequency(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ds := AntiCorrelated(rng, 1500, 4)
	k := 20
	band := Preprocess(ds.Points, k)
	u := RandomUtility(rng, 4)
	for _, every := range []int{1, 2, 5} {
		b.Run(benchName("every", every), func(b *testing.B) {
			totalQ := 0
			for i := 0; i < b.N; i++ {
				alg := core.NewHDPI(core.HDPIOptions{
					Mode: core.ConvexSampling, StopCheckEvery: every,
					Rng: rand.New(rand.NewSource(int64(i))),
				})
				user := NewUser(u)
				alg.Run(band, k, user)
				totalQ += user.Questions()
			}
			b.ReportMetric(float64(totalQ)/float64(b.N), "questions/user")
		})
	}
}

// BenchmarkConvexPoints compares the exact vs sampling convex-point
// detection feeding HD-PI (ablation #3).
func BenchmarkConvexPoints(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	ds := AntiCorrelated(rng, 1000, 4)
	band := Preprocess(ds.Points, 10)
	b.Run("sampling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alg := core.NewHDPI(core.HDPIOptions{Mode: core.ConvexSampling, Rng: rand.New(rand.NewSource(1))})
			alg.Run(band, 10, NewUser(RandomUtility(rng, 4)))
		}
	})
	b.Run("accurate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alg := core.NewHDPI(core.HDPIOptions{Mode: core.ConvexExact, Rng: rand.New(rand.NewSource(1))})
			alg.Run(band, 10, NewUser(RandomUtility(rng, 4)))
		}
	})
}

// BenchmarkKSkyband measures the dataset preprocessing.
func BenchmarkKSkyband(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ds := AntiCorrelated(rng, 10000, 4)
	for _, k := range []int{1, 10, 100} {
		b.Run(benchName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				skyband.KSkyband(ds.Points, k)
			}
		})
	}
}

// BenchmarkSweepPartitioning measures Algorithm 1 (the 2-d plane sweep).
func BenchmarkSweepPartitioning(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	ds := AntiCorrelated(rng, 5000, 2)
	for _, k := range []int{1, 10, 100} {
		band := Preprocess(ds.Points, k)
		b.Run(benchName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sweep.PartitionUtilitySpace(band, k)
			}
		})
	}
}

// BenchmarkOracleTopK measures the ranking helper used by every stopping
// check.
func BenchmarkOracleTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ds := AntiCorrelated(rng, 10000, 4)
	u := RandomUtility(rng, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oracle.TopK(ds.Points, u, 50)
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkExtNoise regenerates the noise-tolerance extension study.
func BenchmarkExtNoise(b *testing.B) {
	runFigure(b, "ext-noise", experiments.Config{N: 1000, D: 3, Trials: 4, Seed: 1})
}

// BenchmarkExtSorting regenerates the sorting-interaction extension study.
func BenchmarkExtSorting(b *testing.B) {
	runFigure(b, "ext-sorting", experiments.Config{N: 1000, D: 3, Ks: []int{1, 20, 60}, Trials: 3, Seed: 1})
}

// BenchmarkObsCounters regenerates the observability profile (BENCH_4.json):
// per-question LP-solve, cut, and prune counts collected through the trace
// observer. Beyond questions/user it reports lp-solves/question for the
// headline algorithm, measuring the per-question processing the /metrics
// endpoint exposes in production.
func BenchmarkObsCounters(b *testing.B) {
	cfg := experiments.Config{N: 1000, D: 3, Ks: []int{1, 20, 60}, Trials: 3, Seed: 1}
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tab, err = experiments.Run("obs-counters", cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	report := func(metric, series, unit string) {
		for _, s := range tab.Metrics[metric] {
			if s.Name == series && len(s.Values) > 0 {
				b.ReportMetric(s.Values[len(s.Values)-1], unit)
			}
		}
	}
	report("questions", "RH", "rh-questions/user")
	report("lp-solves/question", "HD-PI-accurate", "hdpi-lp-solves/question")
}
