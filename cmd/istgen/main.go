// Command istgen generates the evaluation datasets as CSV on stdout.
//
// Usage:
//
//	istgen -dataset anti -n 100000 -d 4 > anti4d.csv
//	istgen -dataset car -n 68010 -skyband 20 > car-band.csv
//
// With -skyband k the output is reduced to the k-skyband, the preprocessing
// every experiment in the paper applies.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ist/internal/dataset"
	"ist/internal/skyband"
)

func main() {
	var (
		name = flag.String("dataset", "anti", "anti|corr|indep|island|weather|car|nba")
		n    = flag.Int("n", 10000, "number of points")
		d    = flag.Int("d", 4, "dimensionality (synthetic families only)")
		seed = flag.Int64("seed", 1, "random seed")
		band = flag.Int("skyband", 0, "reduce to the k-skyband (0 = off)")
	)
	flag.Parse()

	ds, err := dataset.ByName(*name, rand.New(rand.NewSource(*seed)), *n, *d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "istgen:", err)
		os.Exit(1)
	}
	points := ds.Points
	if *band > 0 {
		points = skyband.Filter(points, skyband.KSkyband(points, *band))
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, p := range points {
		for i, x := range p {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			fmt.Fprintf(w, "%.6f", x)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(os.Stderr, "istgen: wrote %d points (%s, %d-d)\n", len(points), ds.Name, ds.Dim())
}
