package main

// Remote mode: -server <url> drives a session hosted by istserve instead of
// running the algorithm in-process. The dialogue goes through ist/client,
// so lost responses, proxy retries and 503 bursts are absorbed by the
// exactly-once seq protocol — every question is answered at most once no
// matter how flaky the network is.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"ist"
	"ist/client"
	"ist/internal/obs"
)

// runRemote executes the full remote dialogue and returns an exit code.
func runRemote(serverURL, algName string, k int, simulate, trace bool, rng *rand.Rand) int {
	reg := obs.NewRegistry()
	opt := client.Options{Metrics: reg}
	if trace {
		// The client mints the trace id; the server continues it, so the
		// whole dialogue — both halves — lands under one trace at
		// /debug/ist/traces on the server.
		opt.Tracer = obs.NewTracer(nil, nil, nil)
	}
	c, err := client.New(serverURL, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "istcli:", err)
		return 1
	}
	ctx := context.Background()
	s, err := c.Create(ctx, algName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "istcli: create session:", err)
		return 1
	}
	st := s.State()
	fmt.Printf("Remote session %s on %s (algorithm %s).\n", s.ID(), serverURL, algName)
	if id := s.TraceID(); id != "" {
		fmt.Printf("Trace %s (inspect at %s/debug/ist/traces?trace=%s).\n", id, serverURL, id)
	}

	var o ist.Oracle
	var hidden ist.Point
	if simulate {
		// The hidden utility's dimensionality comes from the first question
		// — the dataset lives server-side.
		if st.Question == nil || len(st.Question.Option1) == 0 {
			fmt.Fprintln(os.Stderr, "istcli: server sent no question to size the simulated utility")
			return 1
		}
		hidden = ist.RandomUtility(rng, len(st.Question.Option1))
		o = ist.NewUser(hidden)
		fmt.Printf("Simulating a user with hidden utility %v.\n", hidden)
	} else {
		o = ist.NewConsoleOracle(os.Stdin, os.Stdout, nil)
		fmt.Println("Answer each question with 1 or 2; the server will find one of your top tuples.")
	}

	for !st.Done {
		if st.Question == nil {
			// Shouldn't happen in a healthy dialogue; resync rather than spin.
			if st, err = s.Refresh(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "istcli:", err)
				return 1
			}
			continue
		}
		prefer := 2
		if o.Prefer(st.Question.Option1, st.Question.Option2) {
			prefer = 1
		}
		st, err = s.Answer(ctx, prefer)
		var conflict *client.ConflictError
		if errors.As(err, &conflict) {
			// The server refused our seq (e.g. an operator answered from
			// another tab). Its state came back with the 409: re-read the
			// question and continue from there.
			fmt.Fprintln(os.Stderr, "istcli: state out of sync with server; resynced")
			st = conflict.State
			continue
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "istcli: answer:", err)
			return 1
		}
	}

	s.EndTrace()
	fmt.Printf("\nServer finished after %d questions.\n", st.Questions)
	fmt.Printf("Recommended tuple: %v\n", ist.Point(st.Result))
	if cert := st.Certificate; cert != nil {
		if cert.Certified {
			fmt.Printf("Certificate: guaranteed top-%d (stop: %s).\n", k, cert.Reason)
		} else {
			fmt.Printf("Certificate: BEST-EFFORT, not guaranteed top-%d (stop: %s, %d candidates remained).\n",
				k, cert.Reason, cert.Candidates)
		}
	}
	if trace {
		// The client-side counters tell the network story of the session.
		var sb strings.Builder
		reg.WritePrometheus(&sb)
		for _, line := range strings.Split(sb.String(), "\n") {
			if strings.HasPrefix(line, "ist_client_") {
				fmt.Fprintln(os.Stderr, line)
			}
		}
	}
	return 0
}
