// Command istcli runs a live interactive IST session in the terminal: it
// generates (or loads) a dataset, asks YOU the pairwise questions, and
// returns a tuple guaranteed to be among your top-k.
//
// Usage:
//
//	istcli                          # 1000 used cars, top-20, RH
//	istcli -alg hdpi -k 10 -n 500
//	istcli -dataset nba -alg rh
//	istcli -simulate                # answer with a random hidden utility
//
// Answer each question with 1 or 2.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ist"
)

var attrNames = map[string][]string{
	"car":     {"cheapness", "year", "power", "condition"},
	"nba":     {"points", "rebounds", "assists", "steals", "blocks", "minutes"},
	"weather": {"temperature", "dryness", "calm-wind", "sunshine"},
	"island":  {"coast-access", "elevation"},
}

func main() {
	var (
		name     = flag.String("dataset", "car", "anti|corr|indep|island|weather|car|nba")
		load     = flag.String("load", "", "load tuples from a CSV file instead of generating (normalized to (0,1], larger better)")
		n        = flag.Int("n", 1000, "number of candidate tuples")
		d        = flag.Int("d", 4, "dimensionality (synthetic families only)")
		k        = flag.Int("k", 20, "return one of your top-k")
		algName  = flag.String("alg", "rh", "rh|hdpi|hdpi-accurate|2dpi")
		want     = flag.Int("want", 1, "how many of the top-k to return (>1 uses the SomeTopK variants, rh/hdpi only)")
		seed     = flag.Int64("seed", 0, "random seed (0 = time-based)")
		simulate = flag.Bool("simulate", false, "answer automatically with a random hidden utility")
		maxQ     = flag.Int("max-questions", 0, "answer best-effort after this many questions (0 = unlimited)")
		timeout  = flag.Duration("timeout", 0, "answer best-effort after this much time (0 = none)")
		trace    = flag.Bool("trace", false, "stream structured trace events to stderr as JSON lines")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(*seed))

	var ds *ist.Dataset
	var err error
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "istcli:", ferr)
			os.Exit(1)
		}
		ds, err = ist.ReadCSV(f, *load)
		f.Close()
		if err == nil {
			ds, err = ist.NormalizeDataset(ds, nil)
		}
	} else {
		ds, err = ist.DatasetByName(*name, rng, *n, *d)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "istcli:", err)
		os.Exit(1)
	}
	band := ist.Preprocess(ds.Points, *k)
	fmt.Printf("Dataset %s: %d tuples, %d in the %d-skyband.\n", ds.Name, ds.Size(), len(band), *k)

	var alg ist.Algorithm
	switch *algName {
	case "rh":
		alg = ist.NewRH(*seed)
	case "hdpi":
		alg = ist.NewHDPI(*seed)
	case "hdpi-accurate":
		alg = ist.NewHDPIAccurate(*seed)
	case "2dpi":
		if ds.Dim() != 2 {
			fmt.Fprintln(os.Stderr, "istcli: 2dpi needs a 2-dimensional dataset (try -dataset island)")
			os.Exit(1)
		}
		alg = ist.NewTwoDPI()
	default:
		fmt.Fprintln(os.Stderr, "istcli: unknown algorithm", *algName)
		os.Exit(1)
	}
	if *trace {
		// Tracing is passive: the question sequence is identical either way.
		ist.Observe(alg, ist.NewTraceWriter(os.Stderr))
	}

	var o ist.Oracle
	var hidden ist.Point
	if *simulate {
		hidden = ist.RandomUtility(rng, ds.Dim())
		o = ist.NewUser(hidden)
		fmt.Printf("Simulating a user with hidden utility %v.\n", hidden)
	} else {
		attrs := attrNames[ds.Name]
		o = ist.NewConsoleOracle(os.Stdin, os.Stdout, attrs)
		fmt.Printf("Answer each question with 1 or 2; %s will find one of your top-%d tuples.\n", alg.Name(), *k)
	}

	if *want > 1 {
		var multi ist.MultiAlgorithm
		switch *algName {
		case "rh":
			multi = ist.NewRHMulti(*seed)
		case "hdpi":
			multi = ist.NewHDPIMulti(*seed)
		default:
			fmt.Fprintln(os.Stderr, "istcli: -want > 1 supports only rh and hdpi")
			os.Exit(1)
		}
		if *trace {
			ist.Observe(multi, ist.NewTraceWriter(os.Stderr))
		}
		got := multi.RunMulti(band, *k, *want, o)
		fmt.Printf("\n%s finished after %d questions; %d of your top-%d tuples:\n",
			multi.Name(), o.Questions(), len(got), *k)
		for _, i := range got {
			fmt.Printf("  %v\n", band[i])
		}
		if *simulate {
			allGood := true
			for _, i := range got {
				if !ist.IsTopK(band, hidden, *k, band[i]) {
					allGood = false
				}
			}
			fmt.Printf("Verification: all in the top-%d? %v\n", *k, allGood)
		}
		return
	}

	var res ist.Result
	if *maxQ > 0 || *timeout > 0 {
		b := ist.Budget{MaxQuestions: *maxQ}
		if *timeout > 0 {
			b.Deadline = time.Now().Add(*timeout)
		}
		res = ist.SolveBudgeted(alg, band, *k, o, b)
	} else {
		res = ist.Solve(alg, band, *k, o)
	}
	fmt.Printf("\n%s finished after %d questions (%.3fs processing).\n", alg.Name(), res.Questions, res.Duration.Seconds())
	fmt.Printf("Recommended tuple: %v\n", res.Point)
	if c := res.Certificate; c != nil {
		if c.Certified {
			fmt.Printf("Certificate: guaranteed top-%d (stop: %s).\n", *k, c.Reason)
		} else {
			fmt.Printf("Certificate: BEST-EFFORT, not guaranteed top-%d (stop: %s, %d candidates remained).\n",
				*k, c.Reason, c.Candidates)
		}
		for _, dg := range c.Degradations {
			fmt.Printf("  degraded: %s\n", dg)
		}
	}
	if *simulate {
		fmt.Printf("Verification: in top-%d w.r.t. the hidden utility? %v (accuracy %.4f)\n",
			*k, ist.IsTopK(band, hidden, *k, res.Point), ist.Accuracy(band, hidden, *k, res.Point))
	}
}
