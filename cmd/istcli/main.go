// Command istcli runs a live interactive IST session in the terminal: it
// generates (or loads) a dataset, asks YOU the pairwise questions, and
// returns a tuple guaranteed to be among your top-k.
//
// Usage:
//
//	istcli                          # 1000 used cars, top-20, RH
//	istcli -alg hdpi -k 10 -n 500
//	istcli -dataset nba -alg rh
//	istcli -simulate                # answer with a random hidden utility
//	istcli -store-dir mysession     # crash-resumable: rerun to continue
//	istcli -server http://host:8080 # drive a remote istserve session
//
// Answer each question with 1 or 2. With -store-dir every answer is
// fsynced to a write-ahead log before the next question appears; if the
// terminal dies, rerunning the same command replays the transcript and
// resumes exactly where you left off, and completing the session removes
// the directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"ist"
	"ist/internal/wal"
)

var attrNames = map[string][]string{
	"car":     {"cheapness", "year", "power", "condition"},
	"nba":     {"points", "rebounds", "assists", "steals", "blocks", "minutes"},
	"weather": {"temperature", "dryness", "calm-wind", "sunshine"},
	"island":  {"coast-access", "elevation"},
}

func main() {
	var (
		name     = flag.String("dataset", "car", "anti|corr|indep|island|weather|car|nba")
		load     = flag.String("load", "", "load tuples from a CSV file instead of generating (normalized to (0,1], larger better)")
		n        = flag.Int("n", 1000, "number of candidate tuples")
		d        = flag.Int("d", 4, "dimensionality (synthetic families only)")
		k        = flag.Int("k", 20, "return one of your top-k")
		algName  = flag.String("alg", "rh", "rh|hdpi|hdpi-accurate|2dpi")
		want     = flag.Int("want", 1, "how many of the top-k to return (>1 uses the SomeTopK variants, rh/hdpi only)")
		seed     = flag.Int64("seed", 0, "random seed (0 = time-based)")
		simulate = flag.Bool("simulate", false, "answer automatically with a random hidden utility")
		maxQ     = flag.Int("max-questions", 0, "answer best-effort after this many questions (0 = unlimited)")
		timeout  = flag.Duration("timeout", 0, "answer best-effort after this much time (0 = none)")
		trace    = flag.Bool("trace", false, "stream structured trace events to stderr as JSON lines")
		storeDir = flag.String("store-dir", "", "persist every answer to a write-ahead log in this directory; rerunning with the same flags resumes a crashed session without re-asking (removed on completion)")
		server   = flag.String("server", "", "drive a remote istserve session at this base URL (e.g. http://localhost:8080) instead of running locally; retries and duplicate deliveries are absorbed by the exactly-once protocol")
	)
	flag.Parse()

	if *server != "" {
		if *storeDir != "" || *load != "" || *want > 1 {
			fmt.Fprintln(os.Stderr, "istcli: -server is incompatible with -store-dir, -load and -want (the server owns the dataset and transcript)")
			os.Exit(1)
		}
		if *seed == 0 {
			*seed = time.Now().UnixNano()
		}
		os.Exit(runRemote(*server, *algName, *k, *simulate, *trace, rand.New(rand.NewSource(*seed))))
	}

	// A resumable transcript must be opened before the RNG exists: the
	// recovered metadata pins the seed (and thereby the dataset, the
	// question sequence and the simulated user) of the original run.
	var tlog *wal.Log
	var saved []bool
	var meta *transcriptMeta
	if *storeDir != "" {
		if *want > 1 {
			fmt.Fprintln(os.Stderr, "istcli: -store-dir does not support -want > 1")
			os.Exit(1)
		}
		var recov *wal.Recovery
		var err error
		tlog, recov, err = wal.Open(*storeDir, wal.Options{}) // fsync always: an answered question is never re-asked
		if err != nil {
			fmt.Fprintln(os.Stderr, "istcli:", err)
			os.Exit(1)
		}
		for _, p := range recov.Records {
			if len(p) == 0 {
				continue
			}
			switch p[0] {
			case 'm':
				var m transcriptMeta
				if err := json.Unmarshal(p[1:], &m); err == nil {
					meta = &m
				}
			case 'a':
				saved = append(saved, len(p) > 1 && p[1] == '1')
			}
		}
		if recov.Damaged() {
			fmt.Fprintf(os.Stderr, "istcli: transcript in %s recovered with damage (%d corrupt record(s), %d quarantined segment(s)); resuming what survived\n",
				*storeDir, recov.CorruptRecords, recov.QuarantinedSegments)
		}
		if meta != nil {
			if meta.Alg != *algName || meta.Dataset != *name || meta.Load != *load ||
				meta.N != *n || meta.D != *d || meta.K != *k {
				fmt.Fprintf(os.Stderr, "istcli: transcript in %s was recorded with different flags (alg=%s dataset=%s n=%d d=%d k=%d); rerun with those or remove the directory\n",
					*storeDir, meta.Alg, meta.Dataset, meta.N, meta.D, meta.K)
				os.Exit(1)
			}
			*seed = meta.Seed
		}
	}

	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	rng := rand.New(rand.NewSource(*seed))

	var ds *ist.Dataset
	var err error
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "istcli:", ferr)
			os.Exit(1)
		}
		ds, err = ist.ReadCSV(f, *load)
		f.Close()
		if err == nil {
			ds, err = ist.NormalizeDataset(ds, nil)
		}
	} else {
		ds, err = ist.DatasetByName(*name, rng, *n, *d)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "istcli:", err)
		os.Exit(1)
	}
	band := ist.Preprocess(ds.Points, *k)
	fmt.Printf("Dataset %s: %d tuples, %d in the %d-skyband.\n", ds.Name, ds.Size(), len(band), *k)

	var alg ist.Algorithm
	switch *algName {
	case "rh":
		alg = ist.NewRH(*seed)
	case "hdpi":
		alg = ist.NewHDPI(*seed)
	case "hdpi-accurate":
		alg = ist.NewHDPIAccurate(*seed)
	case "2dpi":
		if ds.Dim() != 2 {
			fmt.Fprintln(os.Stderr, "istcli: 2dpi needs a 2-dimensional dataset (try -dataset island)")
			os.Exit(1)
		}
		alg = ist.NewTwoDPI()
	default:
		fmt.Fprintln(os.Stderr, "istcli: unknown algorithm", *algName)
		os.Exit(1)
	}
	if *trace {
		// Tracing is passive: the question sequence is identical either way.
		ist.Observe(alg, ist.NewTraceWriter(os.Stderr))
	}

	var o ist.Oracle
	var hidden ist.Point
	if *simulate {
		hidden = ist.RandomUtility(rng, ds.Dim())
		o = ist.NewUser(hidden)
		fmt.Printf("Simulating a user with hidden utility %v.\n", hidden)
	} else {
		attrs := attrNames[ds.Name]
		o = ist.NewConsoleOracle(os.Stdin, os.Stdout, attrs)
		fmt.Printf("Answer each question with 1 or 2; %s will find one of your top-%d tuples.\n", alg.Name(), *k)
	}

	if tlog != nil {
		fp := ist.Fingerprint(band, *k)
		if meta != nil && meta.Fingerprint != fp {
			fmt.Fprintf(os.Stderr, "istcli: transcript in %s was recorded against different data (fingerprint %x != %x); remove the directory to start over\n",
				*storeDir, meta.Fingerprint, fp)
			os.Exit(1)
		}
		if meta == nil {
			m := transcriptMeta{Alg: *algName, Dataset: *name, Load: *load, N: *n, D: *d, K: *k, Seed: *seed, Fingerprint: fp}
			b, err := json.Marshal(m)
			if err == nil {
				err = tlog.Append(append([]byte{'m'}, b...))
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "istcli:", err)
				os.Exit(1)
			}
		}
		if len(saved) > 0 {
			fmt.Printf("Resuming: replaying %d previously answered question(s) from %s.\n", len(saved), *storeDir)
		}
		o = &persistedOracle{inner: o, log: tlog, saved: saved}
	}

	if *want > 1 {
		var multi ist.MultiAlgorithm
		switch *algName {
		case "rh":
			multi = ist.NewRHMulti(*seed)
		case "hdpi":
			multi = ist.NewHDPIMulti(*seed)
		default:
			fmt.Fprintln(os.Stderr, "istcli: -want > 1 supports only rh and hdpi")
			os.Exit(1)
		}
		if *trace {
			ist.Observe(multi, ist.NewTraceWriter(os.Stderr))
		}
		got := multi.RunMulti(band, *k, *want, o)
		fmt.Printf("\n%s finished after %d questions; %d of your top-%d tuples:\n",
			multi.Name(), o.Questions(), len(got), *k)
		for _, i := range got {
			fmt.Printf("  %v\n", band[i])
		}
		if *simulate {
			allGood := true
			for _, i := range got {
				if !ist.IsTopK(band, hidden, *k, band[i]) {
					allGood = false
				}
			}
			fmt.Printf("Verification: all in the top-%d? %v\n", *k, allGood)
		}
		return
	}

	var res ist.Result
	if *maxQ > 0 || *timeout > 0 {
		b := ist.Budget{MaxQuestions: *maxQ}
		if *timeout > 0 {
			b.Deadline = time.Now().Add(*timeout)
		}
		res = ist.SolveBudgeted(alg, band, *k, o, b)
	} else {
		res = ist.Solve(alg, band, *k, o)
	}
	fmt.Printf("\n%s finished after %d questions (%.3fs processing).\n", alg.Name(), res.Questions, res.Duration.Seconds())
	fmt.Printf("Recommended tuple: %v\n", res.Point)
	if c := res.Certificate; c != nil {
		if c.Certified {
			fmt.Printf("Certificate: guaranteed top-%d (stop: %s).\n", *k, c.Reason)
		} else {
			fmt.Printf("Certificate: BEST-EFFORT, not guaranteed top-%d (stop: %s, %d candidates remained).\n",
				*k, c.Reason, c.Candidates)
		}
		for _, dg := range c.Degradations {
			fmt.Printf("  degraded: %s\n", dg)
		}
	}
	if *simulate {
		fmt.Printf("Verification: in top-%d w.r.t. the hidden utility? %v (accuracy %.4f)\n",
			*k, ist.IsTopK(band, hidden, *k, res.Point), ist.Accuracy(band, hidden, *k, res.Point))
	}
	if tlog != nil {
		// The session reached its answer; nothing is left to resume.
		if err := tlog.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "istcli:", err)
		}
		if err := os.RemoveAll(*storeDir); err != nil {
			fmt.Fprintln(os.Stderr, "istcli:", err)
		} else {
			fmt.Printf("Session complete; transcript store %s removed.\n", *storeDir)
		}
	}
}

// transcriptMeta is the first record of a -store-dir transcript: it pins
// everything the replay needs to regenerate the identical question
// sequence — flags, seed, and the dataset fingerprint.
type transcriptMeta struct {
	Alg         string `json:"alg"`
	Dataset     string `json:"dataset"`
	Load        string `json:"load,omitempty"`
	N           int    `json:"n"`
	D           int    `json:"d"`
	K           int    `json:"k"`
	Seed        int64  `json:"seed"`
	Fingerprint uint64 `json:"fingerprint"`
}

// persistedOracle replays the first len(saved) answers of a recovered
// transcript without re-asking the human (the seeded algorithm re-derives
// the same questions), then appends every fresh answer to the WAL —
// fsynced before it is returned, so a crash never costs an answered
// question.
type persistedOracle struct {
	inner ist.Oracle
	log   *wal.Log
	saved []bool
	n     int
}

// Prefer implements ist.Oracle.
func (o *persistedOracle) Prefer(p, q ist.Point) bool {
	o.n++
	if o.n <= len(o.saved) {
		return o.saved[o.n-1]
	}
	ans := o.inner.Prefer(p, q)
	rec := []byte{'a', '0'}
	if ans {
		rec[1] = '1'
	}
	if err := o.log.Append(rec); err != nil {
		fmt.Fprintln(os.Stderr, "istcli: transcript append:", err)
	}
	return ans
}

// Questions implements ist.Oracle, counting replayed and fresh answers
// alike — the human answered all of them, some in an earlier life.
func (o *persistedOracle) Questions() int { return o.n }
