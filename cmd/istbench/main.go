// Command istbench regenerates the paper's tables and figures.
//
// Usage:
//
//	istbench -exp fig9                 # one experiment at default scale
//	istbench -exp all -n 100000       # the full suite at paper scale
//	istbench -exp fig8 -trials 10 -heavy
//
// Output is an aligned text table per figure with the same series the paper
// plots; see EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ist/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id ("+strings.Join(experiments.Names(), ", ")+") or 'all'")
		n        = flag.Int("n", 10000, "synthetic dataset size")
		d        = flag.Int("d", 4, "synthetic dimensionality")
		ks       = flag.String("k", "1,20,40,60,80,100", "comma-separated k values")
		trials   = flag.Int("trials", 10, "random users averaged per configuration")
		seed     = flag.Int64("seed", 1, "master random seed")
		heavy    = flag.Bool("heavy", false, "include the slow baselines (Preference-Learning, Active-Ranking, -Adapt)")
		plot     = flag.Bool("plot", false, "additionally render each metric as an ASCII chart")
		parallel = flag.Int("parallel", 1, "worker count for independent cells (distorts time measurements)")
		jsonOut  = flag.String("json", "", "also append results as JSON to this file")
	)
	flag.Parse()

	cfg := experiments.Config{
		N: *n, D: *d, Trials: *trials, Seed: *seed, Heavy: *heavy,
		Ks: parseInts(*ks), Parallel: *parallel,
	}

	names := experiments.Names()
	if *exp != "all" {
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		start := time.Now()
		tab, err := experiments.Run(strings.TrimSpace(name), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "istbench:", err)
			os.Exit(1)
		}
		tab.Render(os.Stdout)
		if *jsonOut != "" {
			f, ferr := os.OpenFile(*jsonOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "istbench:", ferr)
				os.Exit(1)
			}
			if err := tab.WriteJSON(f); err != nil {
				fmt.Fprintln(os.Stderr, "istbench:", err)
			}
			f.Close()
		}
		if *plot {
			fmt.Println()
			tab.Plot(os.Stdout)
		}
		fmt.Printf("(%s completed in %.1fs)\n\n", name, time.Since(start).Seconds())
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			fmt.Fprintf(os.Stderr, "istbench: bad k value %q\n", part)
			os.Exit(1)
		}
		out = append(out, v)
	}
	return out
}
