// Command istlint runs the repository's custom static-analysis suite
// (internal/analysis): the expression-level analyzers (floatcmp, lpstatus,
// detrand, epsconst, errdrop, wallclock, obsnil) plus the flow-sensitive
// ones built on the CFG/dataflow layer (locksafe, goroleak, errflow,
// nilguard). They enforce the numeric, LP, determinism and concurrency
// invariants the compiler cannot see. See DESIGN.md §7 and §11.
//
// Usage:
//
//	go run ./cmd/istlint ./...                # lint the whole module
//	go run ./cmd/istlint ./internal/lp        # lint one package
//	go run ./cmd/istlint -only locksafe ./... # run a single analyzer
//	go run ./cmd/istlint -json ./...          # machine-readable findings
//	go run ./cmd/istlint -list                # describe the analyzers
//	go run ./cmd/istlint suppressions ./...   # audit every //lint:ignore
//
// istlint exits 1 when any diagnostic is reported. A finding can be
// suppressed with a justified directive on the offending line or the line
// above:
//
//	//lint:ignore floatcmp exact tie-break keeps the comparator a strict weak order
//
// The reason is mandatory; the suppressions subcommand lists every
// directive with its justification and exits 1 on bare (reason-less)
// directives, which suppress nothing and are either dead or mistaken.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ist/internal/analysis"
)

// jsonDiag is the flat machine-readable shape of one finding, consumed by
// the CI artifact upload.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// jsonReport is the -json document: findings plus the suppression audit, so
// one artifact captures both what fired and what was deliberately waived.
type jsonReport struct {
	Diagnostics  []jsonDiag             `json:"diagnostics"`
	Suppressions []analysis.Suppression `json:"suppressions"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "run a single analyzer by name")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of text")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		a := analysis.ByName(*only)
		if a == nil {
			fmt.Fprintf(os.Stderr, "istlint: unknown analyzer %q (try -list)\n", *only)
			os.Exit(2)
		}
		analyzers = []*analysis.Analyzer{a}
	}

	args := flag.Args()
	if len(args) > 0 && args[0] == "suppressions" {
		os.Exit(runSuppressions(args[1:], *asJSON))
	}

	pkgs := load(args)
	diags, err := analysis.Check(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	if *asJSON {
		report := jsonReport{
			Diagnostics:  make([]jsonDiag, 0, len(diags)),
			Suppressions: suppressionsOrEmpty(pkgs),
		}
		for _, d := range diags {
			report.Diagnostics = append(report.Diagnostics, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		emitJSON(report)
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "istlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// runSuppressions is the audit subcommand: every //lint:ignore directive
// with its location, analyzers and justification. Bare directives (no
// reason) suppress nothing; they are reported and fail the audit.
func runSuppressions(patterns []string, asJSON bool) int {
	pkgs := load(patterns)
	sups := analysis.Suppressions(pkgs)
	if asJSON {
		emitJSON(struct {
			Suppressions []analysis.Suppression `json:"suppressions"`
		}{suppressionsOrEmpty(pkgs)})
	}
	bare := 0
	for _, s := range sups {
		if s.Reason == "" {
			bare++
		}
		if asJSON {
			continue
		}
		reason := s.Reason
		if reason == "" {
			reason = "MISSING REASON (directive is not honored)"
		}
		fmt.Printf("%s:%d: %s: %s\n", s.File, s.Line, joinNames(s.Analyzers), reason)
	}
	if !asJSON {
		fmt.Fprintf(os.Stderr, "istlint: %d suppression(s), %d without a reason\n", len(sups), bare)
	}
	if bare > 0 {
		return 1
	}
	return 0
}

func suppressionsOrEmpty(pkgs []*analysis.Package) []analysis.Suppression {
	sups := analysis.Suppressions(pkgs)
	if sups == nil {
		sups = []analysis.Suppression{}
	}
	return sups
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

func load(patterns []string) []*analysis.Package {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fatal(err)
	}
	return pkgs
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "istlint: %v\n", err)
	os.Exit(2)
}
