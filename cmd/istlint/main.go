// Command istlint runs the repository's custom static-analysis suite
// (internal/analysis): the floatcmp, lpstatus, detrand, epsconst and
// errdrop analyzers that enforce the numeric, LP and determinism invariants
// the compiler cannot see. See DESIGN.md §7 "Static invariants".
//
// Usage:
//
//	go run ./cmd/istlint ./...          # lint the whole module
//	go run ./cmd/istlint ./internal/lp  # lint one package
//	go run ./cmd/istlint -list          # describe the analyzers
//
// istlint exits 1 when any diagnostic is reported. A finding can be
// suppressed with a justified directive on the offending line or the line
// above:
//
//	//lint:ignore floatcmp exact tie-break keeps the comparator a strict weak order
package main

import (
	"flag"
	"fmt"
	"os"

	"ist/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "run a single analyzer by name")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		a := analysis.ByName(*only)
		if a == nil {
			fmt.Fprintf(os.Stderr, "istlint: unknown analyzer %q (try -list)\n", *only)
			os.Exit(2)
		}
		analyzers = []*analysis.Analyzer{a}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "istlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Check(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "istlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "istlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
