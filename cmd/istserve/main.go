// Command istserve exposes interactive IST sessions over HTTP, the way a
// product would embed the library: the server holds the algorithm state,
// the client (a web page, an app) relays questions to a human.
//
//	istserve -addr :8080 -dataset car -n 1000 -k 20
//
// API (JSON):
//
//	POST /sessions                {"algorithm":"hdpi"}        -> {"id":..., "question":{...}}
//	POST /sessions/{id}/answer    {"prefer":1}                -> next question or {"result":{...}}
//	GET  /sessions/{id}                                       -> current state
//	DELETE /sessions/{id}                                     -> abort
//
// A question shows the two tuples' attribute values; answer with prefer 1
// or 2. The server is a demonstration: sessions live in memory and expire
// after -session-ttl.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"time"

	"ist"
	"ist/internal/server"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		name = flag.String("dataset", "car", "anti|corr|indep|island|weather|car|nba")
		n    = flag.Int("n", 1000, "number of candidate tuples")
		d    = flag.Int("d", 4, "dimensionality (synthetic families only)")
		k    = flag.Int("k", 20, "return one of the user's top-k")
		seed = flag.Int64("seed", 1, "random seed")
		ttl  = flag.Duration("session-ttl", 15*time.Minute, "idle session expiry")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	ds, err := ist.DatasetByName(*name, rng, *n, *d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "istserve:", err)
		os.Exit(1)
	}
	band := ist.Preprocess(ds.Points, *k)
	log.Printf("istserve: %s, %d tuples (%d in the %d-skyband), listening on %s",
		ds.Name, ds.Size(), len(band), *k, *addr)

	srv := server.New(band, *k, *seed, *ttl)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
