// Command istserve exposes interactive IST sessions over HTTP, the way a
// product would embed the library: the server holds the algorithm state,
// the client (a web page, an app) relays questions to a human.
//
//	istserve -addr :8080 -dataset car -n 1000 -k 20 -store-dir sessions.wal
//
// API (JSON):
//
//	POST /sessions                {"algorithm":"hdpi"}        -> {"id":..., "seq":0, "question":{...}}
//	POST /sessions/{id}/answer    {"prefer":1,"seq":0}        -> next question or {"result":{...}}
//	GET  /sessions/{id}                                       -> current state
//	DELETE /sessions/{id}                                     -> abort
//	GET  /healthz                                             -> liveness, session counts, build info
//	GET  /readyz                                              -> readiness (503 while starting/draining)
//	GET  /metrics                                             -> Prometheus text exposition (OpenMetrics + exemplars when negotiated)
//	GET  /debug/pprof/                                        -> runtime profiles
//	GET  /debug/ist/traces                                    -> recorded span trees (?trace=<id>&format=html for a waterfall)
//
// A question shows the two tuples' attribute values; answer with prefer 1
// or 2, quoting the question's "seq" — a retried POST with the same seq is
// absorbed idempotently, so lossy networks and eager proxies cannot apply
// an answer twice (DESIGN.md §12). Sessions idle longer than -session-ttl
// are collected by a background reaper, creation is capped at
// -max-sessions, concurrent create/answer work is bounded by -max-inflight
// (excess requests queue for -admission-timeout, then shed with 503), and
// with -store-dir every in-flight session is persisted to a checksummed
// write-ahead log (segment-rotated, snapshot-compacted, fsynced per
// -fsync) and rehydrated (by deterministic transcript replay) when the
// server restarts — a kill -9 or power cut mid-session costs the user no
// re-asked questions. -store keeps the legacy single-file JSONL log
// working and, combined with -store-dir, is migrated into the WAL store
// on first boot. SIGINT or SIGTERM flips /readyz to 503, drains
// connections, and shuts down gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"ist"
	"ist/internal/obs"
	"ist/internal/server"
	"ist/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		name        = flag.String("dataset", "car", "anti|corr|indep|island|weather|car|nba")
		n           = flag.Int("n", 1000, "number of candidate tuples")
		d           = flag.Int("d", 4, "dimensionality (synthetic families only)")
		k           = flag.Int("k", 20, "return one of the user's top-k")
		seed        = flag.Int64("seed", 1, "random seed")
		ttl         = flag.Duration("session-ttl", 15*time.Minute, "idle session expiry")
		reap        = flag.Duration("reap-interval", time.Minute, "how often the reaper scans for idle sessions")
		maxSessions = flag.Int("max-sessions", 1024, "maximum live sessions; creation beyond it returns 429 (0 = unlimited)")
		storePath   = flag.String("store", "", "legacy single-file JSONL session store; with -store-dir set it is migrated into the WAL store on first boot (empty = memory only)")
		storeDir    = flag.String("store-dir", "", "checksummed write-ahead-log session store directory for crash recovery (empty = use -store or memory only)")
		fsync       = flag.String("fsync", "always", "store fsync policy: always|interval|never")
		fsyncEvery  = flag.Duration("fsync-interval", 100*time.Millisecond, "fsync batching interval for -fsync interval")
		snapEvery   = flag.Int("snapshot-every", 256, "fold the session log into a snapshot (and compact old segments) every N events (<0 disables)")
		maxQ        = flag.Int("max-questions", 0, "question budget per session; past it the session answers best-effort with an uncertified certificate (0 = unlimited)")
		deadline    = flag.Duration("session-deadline", 0, "wall-clock budget per session from creation; past it the session answers best-effort (0 = none)")
		traceDir    = flag.String("trace-dir", "", "write one JSONL trace file per session into this directory (empty = no traces)")
		tracing     = flag.Bool("tracing", true, "record spans for every session (in-memory, served at /debug/ist/traces); clients propagate their trace ids via the traceparent header")
		traceBytes  = flag.Int64("trace-max-bytes", server.DefaultTraceMaxBytes, "size cap per session JSONL trace file; past it the file ends with a _truncated marker (<0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 256, "maximum concurrent create/answer requests; excess requests queue up to -admission-timeout and are then shed with 503 (0 = unbounded)")
		admTimeout  = flag.Duration("admission-timeout", 250*time.Millisecond, "how long an over-limit request may queue for admission before being shed")
		par         = flag.Int("parallelism", 0, "preprocessing worker-pool degree per session; transcripts are bit-identical at any value (0 = GOMAXPROCS, 1 = serial)")
		prepCache   = flag.Bool("preprocess-cache", true, "share one preprocessing cache (skyband, convex points, 2-d partitions) across all sessions")
		prepBytes   = flag.Int64("preprocess-cache-max-bytes", 64<<20, "byte cap on memoized preprocessing values, evicted LRU (<=0 = unbounded)")
	)
	flag.Parse()

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "istserve:", err)
			os.Exit(1)
		}
	}

	rng := rand.New(rand.NewSource(*seed))
	ds, err := ist.DatasetByName(*name, rng, *n, *d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "istserve:", err)
		os.Exit(1)
	}
	// The shared preprocessing cache spans sessions AND the boot-time skyband:
	// PreprocessCached seeds it so the first session already finds the skyband
	// entry warm.
	var cache *ist.PreprocessCache
	if *prepCache {
		cache = ist.NewPreprocessCache(*prepBytes)
	}
	var band []ist.Point
	if cache != nil {
		band = ist.PreprocessCached(cache, ds.Points, *k)
	} else {
		band = ist.Preprocess(ds.Points, *k)
	}
	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	policy, err := wal.ParseSyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "istserve:", err)
		os.Exit(1)
	}
	// One registry for everything /metrics exposes: the server's session
	// metrics and the store's durability metrics land side by side.
	reg := obs.NewRegistry()
	var store server.SessionStore
	switch {
	case *storeDir != "":
		ws, err := server.OpenWALStore(*storeDir, server.WALOptions{
			Fsync:         policy,
			FsyncEvery:    *fsyncEvery,
			SnapshotEvery: *snapEvery,
			Metrics:       wal.NewMetrics(reg),
			MigrateJSONL:  *storePath,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "istserve:", err)
			os.Exit(1)
		}
		if n := ws.Migrated(); n > 0 {
			log.Printf("istserve: migrated %d session(s) from %s into %s", n, *storePath, *storeDir)
		}
		store = ws
	case *storePath != "":
		js, err := server.OpenJSONLStoreSync(*storePath, policy, *fsyncEvery, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "istserve:", err)
			os.Exit(1)
		}
		store = js
	}
	// The listener comes up BEFORE session rehydration so that readiness is
	// honest from the first instant: while the WAL replays, /healthz says
	// the process is alive ("starting"), /readyz says 503 do-not-route, and
	// everything else is refused with Retry-After. Once the server is built
	// the handler is swapped in atomically.
	var handler atomic.Pointer[http.Handler]
	boot := http.Handler(bootHandler{})
	handler.Store(&boot)
	httpSrv := &http.Server{
		Addr: *addr,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handler.Load()).ServeHTTP(w, r)
		}),
		// Per-request read/write deadlines bound a stalled or malicious
		// client; the handler work itself is sub-second, so generous values
		// only guard the transport.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	srv, err := server.New(band, *k, server.Options{
		Seed:             *seed,
		TTL:              *ttl,
		ReapInterval:     *reap,
		MaxSessions:      *maxSessions,
		Store:            store,
		MaxQuestions:     *maxQ,
		SessionDeadline:  *deadline,
		TraceDir:         *traceDir,
		Tracing:          *tracing,
		TraceMaxBytes:    *traceBytes,
		Metrics:          reg,
		MaxInflight:      *maxInflight,
		AdmissionTimeout: *admTimeout,
		Parallelism:      workers,
		PrepCache:        cache,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "istserve:", err)
		os.Exit(1)
	}
	live := http.Handler(srv)
	handler.Store(&live)
	log.Printf("istserve %s (%s): %s, %d tuples (%d in the %d-skyband), %d sessions rehydrated",
		server.BuildVersion(), runtime.Version(), ds.Name, ds.Size(), len(band), *k, srv.Sessions())
	cacheState := "off"
	if cache != nil {
		cacheState = fmt.Sprintf("%d entries warm", cache.Stats().Entries)
	}
	log.Printf("istserve: ready on %s (health at /healthz, readiness at /readyz, metrics at /metrics, profiles at /debug/pprof/, max %d sessions, %d in-flight, ttl %s, parallelism %d, preprocess cache %s)",
		*addr, *maxSessions, *maxInflight, *ttl, workers, cacheState)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal("istserve: ", err)
	case sig := <-sigc:
		// Drain in two phases: flip /readyz to 503 (load balancers stop
		// routing, new sessions are refused, in-flight dialogues keep
		// answering), then shut the listener down gracefully.
		if srv.BeginDrain() {
			log.Printf("istserve: %v: draining (readyz now 503, refusing new sessions)", sig)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("istserve: shutdown: %v", err)
		}
		// Sessions close but (with -store) stay persisted: the next start
		// resumes them where the users left off.
		srv.Close()
		log.Print("istserve: drained, bye")
	}
}

// bootHandler serves the window between bind and rehydration: alive but not
// ready. Clients that race the boot get an honest 503 + Retry-After instead
// of a connection refused, so their retry layer handles it like any other
// transient overload.
type bootHandler struct{}

func (bootHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/healthz":
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"starting"}`)
	default:
		w.Header().Set("Retry-After", "1")
		if r.URL.Path == "/readyz" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"status":"starting"}`)
			return
		}
		http.Error(w, "server starting", http.StatusServiceUnavailable)
	}
}
