package ist

// Extensions beyond the paper, addressing its stated future work (users
// who make mistakes) and the follow-up sorting-based interaction of [40].

import (
	"math/rand"

	"ist/internal/baseline"
	"ist/internal/core"
	"ist/internal/oracle"
)

// NewRobustHDPI returns the noise-tolerant HD-PI variant: instead of
// hard-eliminating partitions (where one wrong answer can discard the true
// region forever), it keeps every partition with a multiplicative weight
// and stops when one partition dominates the weight mass. Trades a few
// extra questions for mistake recovery; see the ext-noise experiment.
func NewRobustHDPI(seed int64) Algorithm {
	return core.NewRobustHDPI(core.RobustHDPIOptions{
		Mode: core.ConvexSampling,
		Rng:  rand.New(rand.NewSource(seed)),
	})
}

// NewMajorityOracle wraps any oracle with votes-fold question repetition and
// majority voting (votes must be odd) — the simplest mistake mitigation.
// Questions() of the wrapped oracle counts every repetition, keeping the
// effort trade-off honest.
func NewMajorityOracle(inner Oracle, votes int) Oracle {
	return oracle.NewMajorityOracle(inner, votes)
}

// SortingUH is the sorting-based interactive algorithm of [40]
// (Sorting-Random / Sorting-Simplex): each round displays several tuples
// and derives one halfspace cut per adjacent pair of the user's ordering.
type SortingUH = baseline.SortingUH

// NewSortingRandom returns Sorting-Random [40] with the given display size
// and regret threshold.
func NewSortingRandom(displaySize int, eps float64, seed int64) *SortingUH {
	return &baseline.SortingUH{
		DisplaySize: displaySize, Eps: eps,
		Rng: rand.New(rand.NewSource(seed)),
	}
}

// NewSortingSimplex returns Sorting-Simplex [40].
func NewSortingSimplex(displaySize int, eps float64, seed int64) *SortingUH {
	return &baseline.SortingUH{
		Simplex: true, DisplaySize: displaySize, Eps: eps,
		Rng: rand.New(rand.NewSource(seed)),
	}
}
