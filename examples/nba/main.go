// NBA scouting: a 6-attribute high-dimensional scenario. A scout wants one
// of the top-k players for an unknown weighting of points, rebounds,
// assists, steals, blocks and minutes — and also demonstrates the
// Section 6.5 trade-off between returning one, some, or all of the top-k.
//
//	go run ./examples/nba
package main

import (
	"fmt"
	"math/rand"

	"ist"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	ds := ist.NBALike(rng, 2000)
	k := 10
	band := ist.Preprocess(ds.Points, k)
	fmt.Printf("League: %d players, %d in the %d-skyband (6 attributes)\n\n", ds.Size(), len(band), k)

	scout := ist.RandomUtility(rng, 6)

	// Single-answer comparison: our algorithms vs the UH baselines.
	eps := ist.EpsilonForTopK(band, scout, k)
	for _, alg := range []ist.Algorithm{
		ist.NewHDPI(3), ist.NewRH(3),
		ist.NewUHRandom(eps, 3), ist.NewUHSimplex(eps, 3),
	} {
		user := ist.NewUser(scout)
		res := ist.Solve(alg, band, k, user)
		fmt.Printf("%-14s %2d questions, %7.3fs, top-%d: %v\n",
			alg.Name(), res.Questions, res.Duration.Seconds(), k,
			ist.IsTopK(band, scout, k, res.Point))
	}

	// One vs some vs all of the top-k (Figures 14/17): more answers cost
	// steeply more questions.
	fmt.Println("\nHow many of the top-10 do you want? (RH-SomeTopK)")
	for _, want := range []int{1, 3, 5, 10} {
		user := ist.NewUser(scout)
		got := ist.NewRHMulti(3).RunMulti(band, k, want, user)
		allGood := true
		for _, i := range got {
			if !ist.IsTopK(band, scout, k, band[i]) {
				allGood = false
			}
		}
		fmt.Printf("  want=%2d -> %2d questions, %d players returned, all top-%d: %v\n",
			want, user.Questions(), len(got), k, allGood)
	}
}
