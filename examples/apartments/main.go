// Apartment hunting in 2D: rent cheapness vs size. Demonstrates the
// 2-dimensional machinery of Section 4 — the plane-sweep partitioning of
// the utility space (Algorithm 1) and the binary-search interaction
// (Algorithm 2), which is asymptotically optimal in questions asked.
//
//	go run ./examples/apartments
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"ist"
	"ist/internal/core"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// 400 apartments: cheapness vs size, negatively correlated (big flats
	// cost more).
	ds := ist.AntiCorrelated(rng, 400, 2)
	k := 5
	band := ist.Preprocess(ds.Points, k)
	fmt.Printf("Listings: %d apartments, %d in the %d-skyband\n\n", ds.Size(), len(band), k)

	// Show Algorithm 1's output: the utility space [0,1] divided into the
	// minimum number of partitions, each carrying a guaranteed top-k flat.
	alg := core.TwoDPI{}
	parts := alg.Partitions(band, k)
	fmt.Printf("Algorithm 1 split the utility space into %d partitions:\n", len(parts))
	for i, p := range parts {
		bar := renderBar(p.L, p.R)
		fmt.Printf("  Θ%-2d %s  u₁∈[%.3f,%.3f]  flat(cheap=%.2f,size=%.2f)\n",
			i+1, bar, p.L, p.R, band[p.Point][0], band[p.Point][1])
	}

	// Interact: binary search needs only ⌈log₂(partitions)⌉ questions.
	hidden := ist.Point{0.35, 0.65} // the renter mostly cares about size
	user := ist.NewUser(hidden)
	res := ist.Solve(ist.NewTwoDPI(), band, k, user)
	fmt.Printf("\n2D-PI asked %d questions (log₂(%d) ≈ %.1f) and returned %v\n",
		res.Questions, len(parts), log2(len(parts)), res.Point)
	fmt.Printf("guaranteed top-%d: %v\n", k, ist.IsTopK(band, hidden, k, res.Point))
}

func renderBar(l, r float64) string {
	const width = 40
	a, b := int(l*width), int(r*width)
	if b <= a {
		b = a + 1
	}
	return "[" + strings.Repeat(" ", a) + strings.Repeat("█", b-a) + strings.Repeat(" ", width-b) + "]"
}

func log2(n int) float64 {
	v, x := 0.0, 1
	for x < n {
		x *= 2
		v++
	}
	return v
}
