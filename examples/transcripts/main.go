// Transcripts and mistake tolerance: record a real interaction, replay it
// deterministically, and see what happens when the user misclicks — the
// paper's stated future work, addressed by the majority-vote wrapper and
// the Robust-HD-PI extension.
//
//	go run ./examples/transcripts
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"ist"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	ds := ist.CarLike(rng, 800)
	k := 15
	band := ist.Preprocess(ds.Points, k)
	alice := ist.RandomUtility(rng, 4)
	fmt.Printf("Market: %d cars, %d candidates for the top-%d\n\n", ds.Size(), len(band), k)

	// 1. Record a session.
	rec := ist.NewRecordingOracle(ist.NewUser(alice))
	first := ist.Solve(ist.NewRH(99), band, k, rec)
	fmt.Printf("Recorded session: %d questions -> car %v\n", first.Questions, first.Point)

	// 2. Serialize the transcript (this is what you would persist).
	var buf strings.Builder
	if err := rec.Transcript().Save(&buf); err != nil {
		panic(err)
	}
	fmt.Printf("Transcript JSON: %d bytes\n", len(buf.String()))

	// 3. Replay it against a fresh instance (same algorithm, same seed):
	// the run reproduces exactly without bothering the user again.
	tr, err := ist.LoadTranscript(strings.NewReader(buf.String()))
	if err != nil {
		panic(err)
	}
	rep := ist.NewReplayOracle(tr)
	second := ist.Solve(ist.NewRH(99), band, k, rep)
	fmt.Printf("Replayed session: %d questions -> same car? %v (replay error: %v)\n\n",
		second.Questions, second.Index == first.Index, rep.Err())

	// 4. Mistake tolerance: Alice misclicks 20% of the time.
	fmt.Println("Alice misclicks 20% of the time:")
	trials := 30
	strategies := []struct {
		name string
		run  func(seed int64, o ist.Oracle) ist.Result
	}{
		{"HD-PI (plain)", func(seed int64, o ist.Oracle) ist.Result {
			return ist.Solve(ist.NewHDPI(seed), band, k, o)
		}},
		{"HD-PI + 3-vote majority", func(seed int64, o ist.Oracle) ist.Result {
			return ist.Solve(ist.NewHDPI(seed), band, k, ist.NewMajorityOracle(o, 3))
		}},
		{"Robust-HD-PI", func(seed int64, o ist.Oracle) ist.Result {
			return ist.Solve(ist.NewRobustHDPI(seed), band, k, o)
		}},
	}
	for _, st := range strategies {
		hits, questions := 0, 0
		for trial := 0; trial < trials; trial++ {
			noisy := ist.NewNoisyUser(alice, 0.2, rand.New(rand.NewSource(int64(trial))))
			res := st.run(int64(trial), noisy)
			if ist.IsTopK(band, alice, k, res.Point) {
				hits++
			}
			questions += noisy.Questions()
		}
		fmt.Printf("  %-26s top-%d hit rate %2d/%d, avg %.1f questions\n",
			st.name, k, hits, trials, float64(questions)/float64(trials))
	}
}
