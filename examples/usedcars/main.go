// Used-car shopping: the paper's running example (Section 1). Alice wants a
// cheap car with high horse power but cannot state utility weights; the
// system learns her preference from pairwise choices and returns a car
// guaranteed to be among her top-20.
//
//	go run ./examples/usedcars              # simulated Alice
//	go run ./examples/usedcars -interactive # you are Alice
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"ist"
)

func main() {
	interactive := flag.Bool("interactive", false, "answer the questions yourself")
	flag.Parse()

	rng := rand.New(rand.NewSource(7))
	ds := ist.CarLike(rng, 1000) // 1000 candidate cars as in Section 6.4
	k := 20
	band := ist.Preprocess(ds.Points, k)
	fmt.Printf("Car market: %d cars, %d could be someone's top-%d\n", ds.Size(), len(band), k)

	if *interactive {
		o := ist.NewConsoleOracle(os.Stdin, os.Stdout,
			[]string{"cheapness", "year", "power", "condition"})
		res := ist.Solve(ist.NewHDPI(7), band, k, o)
		fmt.Printf("\nAfter %d questions, your car: cheapness=%.2f year=%.2f power=%.2f condition=%.2f\n",
			res.Questions, res.Point[0], res.Point[1], res.Point[2], res.Point[3])
		return
	}

	// Simulate Alice: she cares 40%% about price and 60%% about power — the
	// weights she could never have typed into a top-k query box.
	alice := ist.Point{0.4, 0.05, 0.5, 0.05}
	fmt.Printf("Alice's hidden utility: %v\n\n", alice)

	for _, alg := range []ist.Algorithm{
		ist.NewHDPI(7), ist.NewHDPIAccurate(7), ist.NewRH(7),
	} {
		user := ist.NewUser(alice)
		res := ist.Solve(alg, band, k, user)
		fmt.Printf("%-16s %2d questions, %7.3fs -> car %v (top-%d: %v)\n",
			alg.Name(), res.Questions, res.Duration.Seconds(), res.Point, k,
			ist.IsTopK(band, alice, k, res.Point))
	}

	// What if Alice sometimes misclicks? (Section 6.4's user study.)
	noisy := ist.NewNoisyUser(alice, 0.1, rng)
	res := ist.Solve(ist.NewRH(7), band, k, noisy)
	fmt.Printf("\nWith 10%% answer noise RH asked %d questions; result accuracy %.3f\n",
		res.Questions, ist.Accuracy(band, alice, k, res.Point))
}
