// Quickstart: find one of a user's top-10 tuples in a 4-attribute dataset
// with a handful of pairwise questions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"ist"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 1. A dataset of 5000 tuples with 4 attributes in (0,1], larger better.
	ds := ist.AntiCorrelated(rng, 5000, 4)

	// 2. Preprocess to the 10-skyband: only these points can ever be top-10.
	k := 10
	band := ist.Preprocess(ds.Points, k)
	fmt.Printf("%d tuples -> %d possible top-%d tuples after preprocessing\n",
		ds.Size(), len(band), k)

	// 3. The "user": in an application this is a person answering questions;
	// here it is a simulation with a hidden utility vector.
	hidden := ist.RandomUtility(rng, 4)
	user := ist.NewUser(hidden)

	// 4. Interactively search for one of the user's top-10 tuples.
	res := ist.Solve(ist.NewRH(1), band, k, user)

	fmt.Printf("RH asked %d questions and returned %v\n", res.Questions, res.Point)
	fmt.Printf("guaranteed top-%d? %v\n", k, ist.IsTopK(band, hidden, k, res.Point))

	// HD-PI usually asks even fewer questions (at higher processing cost).
	user2 := ist.NewUser(hidden)
	res2 := ist.Solve(ist.NewHDPI(1), band, k, user2)
	fmt.Printf("HD-PI asked %d questions and returned %v\n", res2.Questions, res2.Point)
}
