package ist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ist/internal/core"
)

// Session drives an interactive algorithm one question at a time, inverting
// control: instead of handing the algorithm an Oracle and blocking until it
// finishes, the caller pulls the next question with Next, ships it to a real
// user (an HTTP round-trip, a chat message, a survey widget...), and pushes
// the answer back with Answer. This is how a web service embeds the library
// without holding a goroutine per user... almost: internally the algorithm
// still runs on its own goroutine, parked on an unbuffered channel between
// questions, which costs a few KiB and no CPU while waiting.
//
//	s := ist.NewSession(ist.NewHDPI(1), band, k)
//	for {
//	    p, q, done := s.Next()
//	    if done { break }
//	    s.Answer(askHuman(p, q))
//	}
//	fmt.Println(s.Result())
//
// Sessions must be finished (Next returning done, or Close) to release the
// underlying goroutine.
//
// Fault tolerance: a panic inside the algorithm goroutine does not crash the
// process and does not strand the caller. The panic is recovered, the session
// enters a terminal error state, Next reports done, and Answer/Result return
// the error, available from Err. Every answered question is also appended to
// an answer log (AnswerLog) — together with the algorithm's name and seed
// this is enough to rebuild the session deterministically via ResumeSession.
//
// Concurrency: one goroutine drives Next/Answer/Result at a time, but Close
// may be called concurrently from any goroutine (e.g. an expiry reaper); a
// Close racing an in-flight Answer makes Answer return ErrSessionClosed
// rather than deadlock.
type Session struct {
	questions chan sessionQuestion
	answers   chan bool
	result    chan int
	closeSig  chan struct{}
	errSig    chan struct{}

	mu      sync.Mutex
	pending bool
	curP    Point
	curQ    Point
	done    bool
	resIdx  int
	points  []Point
	asked   int
	log     []bool
	closed  bool
	err     error
	cert    Certificate
	hasCert bool
}

type sessionQuestion struct {
	p, q Point
}

// ErrNoPendingQuestion is returned by Answer when Next has not produced an
// unanswered question.
var ErrNoPendingQuestion = errors.New("ist: no pending question to answer")

// ErrSessionClosed is returned by Answer when the session has been closed,
// including a Close racing the Answer from another goroutine.
var ErrSessionClosed = errors.New("ist: session closed")

// sessionOracle adapts the channel plumbing to the Oracle interface.
type sessionOracle struct {
	s *Session
}

func (o sessionOracle) Prefer(p, q Point) bool {
	select {
	case o.s.questions <- sessionQuestion{p: p, q: q}:
	case <-o.s.closeSig:
		panic(sessionClosed{})
	}
	select {
	case ans := <-o.s.answers:
		return ans
	case <-o.s.closeSig:
		panic(sessionClosed{})
	}
}

func (o sessionOracle) Questions() int { return o.s.Questions() }

// sessionClosed aborts the algorithm goroutine when the caller closes the
// session early; recovered at the goroutine top.
type sessionClosed struct{}

// SessionOption configures a session built by NewSessionContext.
type SessionOption func(*sessionConfig)

type sessionConfig struct {
	budget   Budget
	observer Observer
}

// WithBudget runs the session's algorithm under the given anytime budget:
// on exhaustion the session finishes with a best-effort result and an
// uncertified Certificate instead of asking more questions.
func WithBudget(b Budget) SessionOption {
	return func(c *sessionConfig) { c.budget = b }
}

// WithMaxQuestions caps how many questions the session may ask.
func WithMaxQuestions(n int) SessionOption {
	return func(c *sessionConfig) { c.budget.MaxQuestions = n }
}

// WithDeadline stops the session once the clock reaches t. Combine with
// WithClock to control which clock; defaults to the wall clock.
func WithDeadline(t time.Time) SessionOption {
	return func(c *sessionConfig) { c.budget.Deadline = t }
}

// WithClock injects the time source for deadline checks (tests, replay).
func WithClock(clk Clock) SessionOption {
	return func(c *sessionConfig) { c.budget.Clock = clk }
}

// WithObserver attaches a trace observer to the session's algorithm (see
// Observe). It is ignored for algorithms that do not support tracing.
// Observation is passive: the question sequence, answers and result are
// bit-identical with and without an observer.
func WithObserver(o Observer) SessionOption {
	return func(c *sessionConfig) { c.observer = o }
}

// NewSession starts an interactive session for the algorithm on the given
// (preprocessed) points. The algorithm begins computing immediately; the
// first Next call may therefore take as long as the algorithm's setup
// (partitioning, convex points, ...).
func NewSession(alg Algorithm, points []Point, k int) *Session {
	return NewSessionContext(context.Background(), alg, points, k)
}

// NewSessionContext is NewSession under a context and anytime options. A
// cancelable context (one whose Done channel is non-nil) or any budget
// option makes the session budgeted: the algorithm checks the budget at
// every question boundary and inside its heavy loops, and when it runs out —
// questions, deadline, or cancellation — the session finishes cleanly with
// a best-effort result and a Certificate (see Certificate) instead of
// hanging or erroring. A background context with no options behaves exactly
// like NewSession, certificates included only when the algorithm finished
// by its own stopping rule.
//
// A budgeted session also absorbs algorithm panics into best-effort results
// (Reason "panic-recovered") rather than entering the error state —
// anytime means the user always gets a point.
func NewSessionContext(ctx context.Context, alg Algorithm, points []Point, k int, opts ...SessionOption) *Session {
	var cfg sessionConfig
	for _, o := range opts {
		o(&cfg)
	}
	if ctx != nil && ctx.Done() != nil {
		cfg.budget.Ctx = ctx
	}
	if cfg.observer != nil {
		Observe(alg, cfg.observer)
	}
	s := &Session{
		questions: make(chan sessionQuestion),
		answers:   make(chan bool),
		result:    make(chan int, 1),
		points:    points,
		closeSig:  make(chan struct{}),
		errSig:    make(chan struct{}),
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(sessionClosed); ok {
					return // caller closed the session; swallow
				}
				// Isolate the fault: record it and wake any caller parked
				// in Next/Answer instead of taking the process down.
				s.mu.Lock()
				s.err = fmt.Errorf("ist: session algorithm panicked: %v", r)
				s.mu.Unlock()
				close(s.errSig)
			}
		}()
		var idx int
		if cfg.budget.Active() {
			var cert Certificate
			idx, cert = core.RunBudgeted(alg, points, k, sessionOracle{s: s}, cfg.budget)
			s.mu.Lock()
			s.cert, s.hasCert = cert, true
			s.mu.Unlock()
		} else {
			idx = alg.Run(points, k, sessionOracle{s: s})
		}
		select {
		case s.result <- idx:
		case <-s.closeSig:
		}
	}()
	return s
}

// Next returns the next question (two points for the user to compare) or
// done=true once the algorithm has finished — or failed or was closed; check
// Err (and Result's error) to tell the cases apart. Calling Next again
// without answering returns the same pending question.
func (s *Session) Next() (p, q Point, done bool) {
	s.mu.Lock()
	if s.done || s.closed || s.err != nil {
		s.mu.Unlock()
		return nil, nil, true
	}
	if s.pending {
		p, q = s.curP, s.curQ
		s.mu.Unlock()
		return p, q, false
	}
	s.mu.Unlock()
	select {
	case question := <-s.questions:
		s.mu.Lock()
		s.pending, s.curP, s.curQ = true, question.p, question.q
		s.mu.Unlock()
		return question.p, question.q, false
	case idx := <-s.result:
		s.mu.Lock()
		s.done, s.resIdx = true, idx
		s.mu.Unlock()
		return nil, nil, true
	case <-s.errSig:
		return nil, nil, true
	case <-s.closeSig:
		return nil, nil, true
	}
}

// Answer resolves the pending question: preferFirst is true when the user
// prefers the first point of the pair returned by Next. On a failed session
// it returns the algorithm's error; on a closed one, ErrSessionClosed.
func (s *Session) Answer(preferFirst bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	if !s.pending {
		s.mu.Unlock()
		return ErrNoPendingQuestion
	}
	s.mu.Unlock()
	select {
	case s.answers <- preferFirst:
	case <-s.closeSig:
		return ErrSessionClosed
	case <-s.errSig:
		return s.Err()
	}
	s.mu.Lock()
	s.pending = false
	s.asked++
	s.log = append(s.log, preferFirst)
	s.mu.Unlock()
	return nil
}

// Questions returns how many questions have been answered so far.
func (s *Session) Questions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.asked
}

// Certificate returns the anytime certificate of a budgeted session once it
// has finished, and ok=false before then or for unbudgeted sessions. A
// Certified=false certificate means the point from Result is best-effort:
// the budget ran out (see Reason) before the algorithm could prove it top-k.
func (s *Session) Certificate() (Certificate, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done || !s.hasCert {
		return Certificate{}, false
	}
	return s.cert, true
}

// Err reports the terminal error of a failed session (an algorithm panic),
// or nil while the session is healthy.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// AnswerLog returns a copy of every answer given so far, in order. Replaying
// it through an identically constructed algorithm (same name, same seed,
// same points) reproduces the session exactly; see ResumeSession.
func (s *Session) AnswerLog() []bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]bool(nil), s.log...)
}

// Result returns the found point after Next has reported done. It errors if
// the session is still in progress or has failed.
func (s *Session) Result() (Point, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return nil, 0, s.err
	}
	if !s.done {
		return nil, 0, fmt.Errorf("ist: session still in progress after %d questions", s.asked)
	}
	return s.points[s.resIdx].Clone(), s.resIdx, nil
}

// Close aborts an in-progress session and releases its goroutine. It is a
// no-op on a finished or already-closed session and is safe to call
// concurrently with Next/Answer.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	stop := !s.done && s.err == nil
	s.mu.Unlock()
	if stop {
		close(s.closeSig)
	}
}
