package ist

import (
	"errors"
	"fmt"
)

// Session drives an interactive algorithm one question at a time, inverting
// control: instead of handing the algorithm an Oracle and blocking until it
// finishes, the caller pulls the next question with Next, ships it to a real
// user (an HTTP round-trip, a chat message, a survey widget...), and pushes
// the answer back with Answer. This is how a web service embeds the library
// without holding a goroutine per user... almost: internally the algorithm
// still runs on its own goroutine, parked on an unbuffered channel between
// questions, which costs a few KiB and no CPU while waiting.
//
//	s := ist.NewSession(ist.NewHDPI(1), band, k)
//	for {
//	    p, q, done := s.Next()
//	    if done { break }
//	    s.Answer(askHuman(p, q))
//	}
//	fmt.Println(s.Result())
//
// Sessions must be finished (Next returning done, or Close) to release the
// underlying goroutine. A Session is not safe for concurrent use.
type Session struct {
	questions chan sessionQuestion
	answers   chan bool
	result    chan int

	pending  bool
	curP     Point
	curQ     Point
	done     bool
	resIdx   int
	points   []Point
	asked    int
	closed   bool
	closeSig chan struct{}
}

type sessionQuestion struct {
	p, q Point
}

// ErrNoPendingQuestion is returned by Answer when Next has not produced an
// unanswered question.
var ErrNoPendingQuestion = errors.New("ist: no pending question to answer")

// sessionOracle adapts the channel plumbing to the Oracle interface.
type sessionOracle struct {
	s *Session
}

func (o sessionOracle) Prefer(p, q Point) bool {
	select {
	case o.s.questions <- sessionQuestion{p: p, q: q}:
	case <-o.s.closeSig:
		panic(sessionClosed{})
	}
	select {
	case ans := <-o.s.answers:
		return ans
	case <-o.s.closeSig:
		panic(sessionClosed{})
	}
}

func (o sessionOracle) Questions() int { return o.s.asked }

// sessionClosed aborts the algorithm goroutine when the caller closes the
// session early; recovered at the goroutine top.
type sessionClosed struct{}

// NewSession starts an interactive session for the algorithm on the given
// (preprocessed) points. The algorithm begins computing immediately; the
// first Next call may therefore take as long as the algorithm's setup
// (partitioning, convex points, ...).
func NewSession(alg Algorithm, points []Point, k int) *Session {
	s := &Session{
		questions: make(chan sessionQuestion),
		answers:   make(chan bool),
		result:    make(chan int, 1),
		points:    points,
		closeSig:  make(chan struct{}),
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(sessionClosed); ok {
					return // caller closed the session; swallow
				}
				panic(r)
			}
		}()
		idx := alg.Run(points, k, sessionOracle{s: s})
		select {
		case s.result <- idx:
		case <-s.closeSig:
		}
	}()
	return s
}

// Next returns the next question (two points for the user to compare) or
// done=true once the algorithm has finished. Calling Next again without
// answering returns the same pending question.
func (s *Session) Next() (p, q Point, done bool) {
	if s.done {
		return nil, nil, true
	}
	if s.pending {
		return s.curP, s.curQ, false
	}
	select {
	case question := <-s.questions:
		s.pending = true
		s.curP, s.curQ = question.p, question.q
		return s.curP, s.curQ, false
	case idx := <-s.result:
		s.done = true
		s.resIdx = idx
		return nil, nil, true
	}
}

// Answer resolves the pending question: preferFirst is true when the user
// prefers the first point of the pair returned by Next.
func (s *Session) Answer(preferFirst bool) error {
	if s.closed {
		return errors.New("ist: session closed")
	}
	if !s.pending {
		return ErrNoPendingQuestion
	}
	s.pending = false
	s.asked++
	s.answers <- preferFirst
	return nil
}

// Questions returns how many questions have been answered so far.
func (s *Session) Questions() int { return s.asked }

// Result returns the found point after Next has reported done. It errors if
// the session is still in progress.
func (s *Session) Result() (Point, int, error) {
	if !s.done {
		return nil, 0, fmt.Errorf("ist: session still in progress after %d questions", s.asked)
	}
	return s.points[s.resIdx].Clone(), s.resIdx, nil
}

// Close aborts an in-progress session and releases its goroutine. It is a
// no-op on a finished or already-closed session.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if !s.done {
		close(s.closeSig)
	}
}
