package ist

import (
	"io"

	"ist/internal/oracle"
)

// Interaction transcripts: record real sessions for auditing, reproduce
// them deterministically later (same algorithm, same seed).

// Transcript is an ordered record of question/answer exchanges.
type Transcript = oracle.Transcript

// RecordingOracle wraps an oracle and records every exchange.
type RecordingOracle = oracle.RecordingOracle

// ReplayOracle answers questions from a saved transcript.
type ReplayOracle = oracle.ReplayOracle

// NewRecordingOracle wraps inner with transcript recording.
func NewRecordingOracle(inner Oracle) *RecordingOracle {
	return oracle.NewRecordingOracle(inner)
}

// NewReplayOracle answers from a transcript; pair with the same algorithm
// and seed that produced it.
func NewReplayOracle(t *Transcript) *ReplayOracle { return oracle.NewReplayOracle(t) }

// LoadTranscript reads a JSON transcript.
func LoadTranscript(r io.Reader) (*Transcript, error) { return oracle.LoadTranscript(r) }
