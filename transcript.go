package ist

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"ist/internal/oracle"
)

// Interaction transcripts: record real sessions for auditing, reproduce
// them deterministically later (same algorithm, same seed).

// Transcript is an ordered record of question/answer exchanges.
type Transcript = oracle.Transcript

// RecordingOracle wraps an oracle and records every exchange.
type RecordingOracle = oracle.RecordingOracle

// ReplayOracle answers questions from a saved transcript.
type ReplayOracle = oracle.ReplayOracle

// NewRecordingOracle wraps inner with transcript recording.
func NewRecordingOracle(inner Oracle) *RecordingOracle {
	return oracle.NewRecordingOracle(inner)
}

// NewReplayOracle answers from a transcript; pair with the same algorithm
// and seed that produced it.
func NewReplayOracle(t *Transcript) *ReplayOracle { return oracle.NewReplayOracle(t) }

// LoadTranscript reads a JSON transcript.
func LoadTranscript(r io.Reader) (*Transcript, error) { return oracle.LoadTranscript(r) }

// ResumeSession rebuilds an in-flight interactive session by replaying a
// recorded answer log (Session.AnswerLog, or Transcript.Answers) through a
// freshly constructed algorithm. The algorithm must be the same kind with
// the same seed over the same points as the one that produced the log —
// deterministic algorithms then re-ask exactly the recorded questions, so
// only the answers need to be stored. It returns an error if the replay
// diverges (the algorithm finishes or fails before the log is exhausted);
// the partially replayed session is closed in that case.
//
// This is the crash-recovery primitive behind the HTTP server's session
// store: persist (algorithm, seed, answers), and after a restart resume
// every in-flight session without re-asking the user anything.
func ResumeSession(alg Algorithm, points []Point, k int, answers []bool) (*Session, error) {
	return ResumeSessionContext(context.Background(), alg, points, k, answers)
}

// ResumeSessionContext is ResumeSession for budgeted sessions: the rebuilt
// session runs under the same context and options a NewSessionContext call
// would. Budget checks consume no randomness, so a budgeted algorithm
// re-asks exactly the questions an unbudgeted one would — recorded answer
// logs replay cleanly across both.
func ResumeSessionContext(ctx context.Context, alg Algorithm, points []Point, k int, answers []bool, opts ...SessionOption) (*Session, error) {
	s := NewSessionContext(ctx, alg, points, k, opts...)
	for i, ans := range answers {
		if _, _, done := s.Next(); done {
			err := s.Err()
			s.Close()
			if err == nil {
				err = fmt.Errorf("ist: replay diverged: algorithm finished after %d of %d recorded answers", i, len(answers))
			}
			return nil, err
		}
		if err := s.Answer(ans); err != nil {
			s.Close()
			return nil, fmt.Errorf("ist: replay failed at answer %d of %d: %w", i+1, len(answers), err)
		}
	}
	return s, nil
}

// Fingerprint hashes a point set and k into a stable identifier. A replayed
// answer log is only meaningful against the exact data it was recorded on;
// persisting the fingerprint next to the log lets a restarted service refuse
// to resume sessions against a different (re-generated, re-ordered, or
// re-parameterized) dataset instead of silently diverging.
func Fingerprint(points []Point, k int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(k))
	h.Write(buf[:])
	for _, p := range points {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(p)))
		h.Write(buf[:])
		for _, v := range p {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}
