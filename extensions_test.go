package ist

import (
	"math/rand"
	"testing"
)

func TestRobustHDPIPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := AntiCorrelated(rng, 300, 3)
	k := 5
	band := Preprocess(ds.Points, k)
	u := RandomUtility(rng, 3)
	res := Solve(NewRobustHDPI(1), band, k, NewUser(u))
	if res.Index < 0 || res.Index >= len(band) {
		t.Fatalf("bad index %d", res.Index)
	}
	// With a truthful user the robust variant should still land in the
	// top-k in this easy setting.
	if !IsTopK(band, u, k, res.Point) {
		t.Fatal("robust variant missed the top-k with a truthful user")
	}
}

func TestMajorityOraclePublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := RandomUtility(rng, 3)
	noisy := NewNoisyUser(u, 0.2, rng)
	maj := NewMajorityOracle(noisy, 3)
	ds := AntiCorrelated(rng, 200, 3)
	band := Preprocess(ds.Points, 4)
	res := Solve(NewHDPI(2), band, 4, maj)
	if res.Questions == 0 && len(band) > 5 {
		t.Fatal("no questions asked")
	}
	// Questions counts the raw repetitions.
	if noisy.Questions() != res.Questions {
		t.Fatalf("majority question accounting: %d vs %d", noisy.Questions(), res.Questions)
	}
}

func TestSortingPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := AntiCorrelated(rng, 200, 3)
	k := 5
	band := Preprocess(ds.Points, k)
	u := RandomUtility(rng, 3)
	eps := EpsilonForTopK(band, u, k)
	for _, alg := range []*SortingUH{
		NewSortingRandom(4, eps, 3),
		NewSortingSimplex(4, eps, 3),
	} {
		user := NewUser(u)
		res := Solve(alg, band, k, user)
		if !IsTopK(band, u, k, res.Point) {
			t.Fatalf("%s returned non-top-%d", alg.Name(), k)
		}
		if alg.DisplayRounds() > res.Questions {
			t.Fatalf("%s: display rounds %d > pairwise questions %d",
				alg.Name(), alg.DisplayRounds(), res.Questions)
		}
	}
}
