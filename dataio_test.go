package ist

import (
	"strings"
	"testing"
)

func TestReadWriteCSVPublicAPI(t *testing.T) {
	in := `# raw listing: price (less better), power (more better)
20000,150
10000,120
30000,220
`
	ds, err := ReadCSV(strings.NewReader(in), "cars")
	if err != nil {
		t.Fatal(err)
	}
	norm, err := NormalizeDataset(ds, []Orientation{SmallerBetter, LargerBetter})
	if err != nil {
		t.Fatal(err)
	}
	// The cheapest car gets the best price score.
	if norm.Points[1][0] != 1 {
		t.Fatalf("cheapest car price score = %v", norm.Points[1][0])
	}
	// The normalized dataset feeds straight into the pipeline.
	band := Preprocess(norm.Points, 1)
	if len(band) == 0 {
		t.Fatal("no skyline from normalized data")
	}
	var out strings.Builder
	if err := WriteCSV(&out, norm); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(strings.TrimSpace(out.String()), "\n") + 1; lines != 3 {
		t.Fatalf("wrote %d lines", lines)
	}
}

func TestEndToEndFromCSV(t *testing.T) {
	// The full adoption path: raw CSV -> normalize -> preprocess -> solve.
	var raw strings.Builder
	raw.WriteString("price,year,power,km\n")
	rows := []string{
		"15000,2015,110,90000", "22000,2018,150,40000", "9000,2010,75,150000",
		"31000,2020,220,15000", "18000,2016,130,70000", "12000,2013,95,110000",
		"27000,2019,180,25000", "20000,2017,140,55000", "16000,2015,120,80000",
		"25000,2018,170,35000", "11000,2012,85,120000", "29000,2020,200,20000",
	}
	for _, r := range rows {
		raw.WriteString(r + "\n")
	}
	ds, err := ReadCSV(strings.NewReader(raw.String()), "mycars")
	if err != nil {
		t.Fatal(err)
	}
	norm, err := NormalizeDataset(ds, []Orientation{
		SmallerBetter, LargerBetter, LargerBetter, SmallerBetter,
	})
	if err != nil {
		t.Fatal(err)
	}
	k := 3
	band := Preprocess(norm.Points, k)
	hidden := Point{0.4, 0.1, 0.4, 0.1}
	res := Solve(NewHDPIAccurate(1), band, k, NewUser(hidden))
	if !IsTopK(band, hidden, k, res.Point) {
		t.Fatal("CSV end-to-end returned non-top-k car")
	}
}
