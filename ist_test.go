package ist

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSolveEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := AntiCorrelated(rng, 300, 4)
	k := 10
	band := Preprocess(ds.Points, k)
	u := RandomUtility(rng, 4)
	for _, alg := range []Algorithm{NewRH(7), NewHDPI(7), NewHDPIAccurate(7)} {
		user := NewUser(u)
		res := Solve(alg, band, k, user)
		if !IsTopK(band, u, k, res.Point) {
			t.Fatalf("%s returned non-top-%d point", alg.Name(), k)
		}
		if res.Questions != user.Questions() {
			t.Fatalf("question accounting mismatch: %d vs %d", res.Questions, user.Questions())
		}
		if res.Index < 0 || res.Index >= len(band) {
			t.Fatalf("bad index %d", res.Index)
		}
		if !res.Point.Equal(band[res.Index]) {
			t.Fatal("Point does not match Index")
		}
	}
}

func TestSolveTwoD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := IslandLike(rng, 500)
	k := 5
	band := Preprocess(ds.Points, k)
	u := RandomUtility(rng, 2)
	res := Solve(NewTwoDPI(), band, k, NewUser(u))
	if !IsTopK(band, u, k, res.Point) {
		t.Fatal("2D-PI returned non-top-k point")
	}
}

func TestEpsilonForTopK(t *testing.T) {
	pts := []Point{{0, 1}, {0.3, 0.7}, {0.5, 0.8}, {0.7, 0.4}, {1, 0}}
	u := Point{0.4, 0.6}
	// f1 = 0.68 (p3), f2 = 0.6 (p1): eps = 1 - 0.6/0.68.
	got := EpsilonForTopK(pts, u, 2)
	want := 1 - 0.6/0.68
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("eps = %v, want %v", got, want)
	}
	if EpsilonForTopK(nil, u, 1) != 0 {
		t.Fatal("empty dataset eps must be 0")
	}
}

func TestBaselineConstructorsRun(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := AntiCorrelated(rng, 120, 3)
	k := 5
	band := Preprocess(ds.Points, k)
	u := RandomUtility(rng, 3)
	eps := EpsilonForTopK(band, u, k)
	algs := []Algorithm{
		NewUHRandom(eps, 1), NewUHSimplex(eps, 1),
		NewUHRandomAdapt(1), NewUHSimplexAdapt(1),
		NewUtilityApprox(eps), NewPreferenceLearning(1), NewActiveRanking(1),
	}
	for _, alg := range algs {
		res := Solve(alg, band, k, NewUser(u))
		if res.Index < 0 || res.Index >= len(band) {
			t.Fatalf("%s: bad index", alg.Name())
		}
	}
	// 2-d-only baselines.
	ds2 := IslandLike(rng, 200)
	band2 := Preprocess(ds2.Points, k)
	u2 := RandomUtility(rng, 2)
	for _, alg := range []Algorithm{NewMedian(), NewHull(), NewMedianAdapt(), NewHullAdapt()} {
		res := Solve(alg, band2, k, NewUser(u2))
		if res.Index < 0 || res.Index >= len(band2) {
			t.Fatalf("%s: bad index", alg.Name())
		}
	}
}

func TestMultiConstructors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := AntiCorrelated(rng, 100, 3)
	k := 6
	band := Preprocess(ds.Points, k)
	u := RandomUtility(rng, 3)
	for _, alg := range []MultiAlgorithm{NewRHMulti(5), NewHDPIMulti(5)} {
		got := alg.RunMulti(band, k, 3, NewUser(u))
		if len(got) != 3 {
			t.Fatalf("%s returned %d points", alg.Name(), len(got))
		}
	}
}

func TestConsoleOracle(t *testing.T) {
	in := strings.NewReader("2\nbogus\n1\n")
	var out strings.Builder
	c := NewConsoleOracle(in, &out, []string{"price", "power"})
	if c.Prefer(Point{0.1, 0.9}, Point{0.9, 0.1}) {
		t.Fatal("answer 2 must mean the second point")
	}
	if !c.Prefer(Point{0.1, 0.9}, Point{0.9, 0.1}) {
		t.Fatal("bogus then 1 must mean the first point")
	}
	// EOF defaults to the first point.
	if !c.Prefer(Point{0.5, 0.5}, Point{0.4, 0.4}) {
		t.Fatal("EOF must default to the first point")
	}
	if c.Questions() != 3 {
		t.Fatalf("Questions = %d", c.Questions())
	}
	text := out.String()
	if !strings.Contains(text, "price=") || !strings.Contains(text, "Please answer") {
		t.Fatalf("unexpected console transcript:\n%s", text)
	}
}

func TestConsoleOracleDenormalize(t *testing.T) {
	in := strings.NewReader("1\n")
	var out strings.Builder
	c := NewConsoleOracle(in, &out, []string{"price"})
	c.Denormalize = func(p Point) []string { return []string{"$12000"} }
	c.Prefer(Point{0.5}, Point{0.6})
	if !strings.Contains(out.String(), "price=$12000") {
		t.Fatalf("denormalized display missing:\n%s", out.String())
	}
}
